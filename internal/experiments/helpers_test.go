package experiments

import (
	"math"
	"testing"

	"wcle/internal/core"
	"wcle/internal/stats"
)

func TestThm13References(t *testing.T) {
	// sqrt(256) * ln(256)^3.5 * 10
	want := 16 * math.Pow(math.Log(256), 3.5) * 10
	if got := thm13Messages(256, 10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("thm13Messages = %v, want %v", got, want)
	}
	wantT := 10 * math.Log(256) * math.Log(256)
	if got := thm13Time(256, 10); math.Abs(got-wantT) > 1e-9 {
		t.Fatalf("thm13Time = %v, want %v", got, wantT)
	}
}

func TestCrossoverSolvesIntersection(t *testing.T) {
	// y1 = e^0 * x^1, y2 = e^2 * x^0.5 cross where x^0.5 = e^2, x = e^4.
	f1 := stats.Fit{Intercept: 0, Slope: 1}
	f2 := stats.Fit{Intercept: 2, Slope: 0.5}
	got := crossover(f1, f2)
	want := math.Exp(4)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("crossover = %v, want %v", got, want)
	}
	if !math.IsInf(crossover(f1, f1), 1) {
		t.Fatal("parallel fits should give +inf crossover")
	}
}

func TestFitExponentPerFamily(t *testing.T) {
	recs := []ubRecord{
		{family: "a", n: 10},
		{family: "a", n: 100},
		{family: "b", n: 10},
	}
	b, err := fitExponent(recs, "a", func(r ubRecord) float64 { return float64(r.n * r.n) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", b)
	}
	// Single point: NaN, no error.
	b, err = fitExponent(recs, "b", func(r ubRecord) float64 { return 1 })
	if err != nil || !math.IsNaN(b) {
		t.Fatalf("single-point fit: %v, %v", b, err)
	}
}

func TestUBRecordMedians(t *testing.T) {
	mk := func(msgs int64, success bool) *core.Result {
		r := &core.Result{Success: success}
		r.Metrics.Messages = msgs
		return r
	}
	rec := ubRecord{trials: []*core.Result{mk(10, true), mk(30, false), mk(20, true)}}
	med := rec.medianOf(func(r *core.Result) float64 { return float64(r.Metrics.Messages) })
	if med != 20 {
		t.Fatalf("median = %v, want 20", med)
	}
	if rec.successCount() != 2 {
		t.Fatalf("successes = %d, want 2", rec.successCount())
	}
	empty := ubRecord{}
	if !math.IsNaN(empty.medianOf(func(*core.Result) float64 { return 0 })) {
		t.Fatal("empty record median should be NaN")
	}
}

func TestSuiteRegimes(t *testing.T) {
	quick := NewSuite(1, true)
	full := NewSuite(1, false)
	if len(quick.families()) != 3 || len(full.families()) != 4 {
		t.Fatalf("family sets wrong: quick=%d full=%d (full adds the torus family)",
			len(quick.families()), len(full.families()))
	}
	if quick.ubTrials() >= full.ubTrials() {
		t.Fatal("quick must run fewer trials")
	}
	if len(quick.lbAlphas()) >= len(full.lbAlphas()) {
		t.Fatal("quick must sweep fewer alphas")
	}
	if quick.lbSize() >= full.lbSize() {
		t.Fatal("quick must use smaller lower-bound graphs")
	}
}

func TestMeasuredTmixTransitive(t *testing.T) {
	g, err := buildFamily("hypercube", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := measuredTmix(g)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 5 || tm > 200 {
		t.Fatalf("hypercube-32 tmix = %d out of plausible range", tm)
	}
}

func TestFormatterHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Fatalf("f1 = %q", f1(1.25))
	}
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" && f3(1.2345) != "1.235" {
		t.Fatalf("f2/f3 wrong: %q %q", f2(1.234), f3(1.2345))
	}
	if d(7) != "7" || d64(9) != "9" {
		t.Fatal("d/d64 wrong")
	}
	if g3(0.00123456) != "0.00123" {
		t.Fatalf("g3 = %q", g3(0.00123456))
	}
}
