package experiments

import (
	"math"
	"strings"
	"testing"

	"wcle/internal/stats"
)

func TestThm13References(t *testing.T) {
	// sqrt(256) * ln(256)^3.5 * 10
	want := 16 * math.Pow(math.Log(256), 3.5) * 10
	if got := thm13Messages(256, 10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("thm13Messages = %v, want %v", got, want)
	}
	wantT := 10 * math.Log(256) * math.Log(256)
	if got := thm13Time(256, 10); math.Abs(got-wantT) > 1e-9 {
		t.Fatalf("thm13Time = %v, want %v", got, wantT)
	}
}

func TestCrossoverSolvesIntersection(t *testing.T) {
	// y1 = e^0 * x^1, y2 = e^2 * x^0.5 cross where x^0.5 = e^2, x = e^4.
	f1 := stats.Fit{Intercept: 0, Slope: 1}
	f2 := stats.Fit{Intercept: 2, Slope: 0.5}
	got := crossover(f1, f2)
	want := math.Exp(4)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("crossover = %v, want %v", got, want)
	}
	if !math.IsInf(crossover(f1, f1), 1) {
		t.Fatal("parallel fits should give +inf crossover")
	}
}

func TestFitExponentPerFamily(t *testing.T) {
	mk := func(fam string, n int) PointData {
		return PointData{Point: Point{Family: fam, N: n}, Trials: []Metrics{{}}}
	}
	data := []PointData{mk("a", 10), mk("a", 100), mk("b", 10)}
	b, err := fitExponent(data, "a", func(pd PointData) float64 {
		return float64(pd.Point.N) * float64(pd.Point.N)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", b)
	}
	// Single point: NaN, no error.
	b, err = fitExponent(data, "b", func(pd PointData) float64 { return 1 })
	if err != nil || !math.IsNaN(b) {
		t.Fatalf("single-point fit: %v, %v", b, err)
	}
}

func TestPointDataAggregation(t *testing.T) {
	pd := PointData{
		Point: Point{Key: "x"},
		Trials: []Metrics{
			{"msgs": 10, "success": 1, "tu_med": 5},
			{"msgs": 30, "success": 0},
			{"msgs": 20, "success": 1, "tu_med": 7},
		},
	}
	if med := pd.Median("msgs"); med != 20 {
		t.Fatalf("median = %v, want 20", med)
	}
	if pd.Count("success") != 2 {
		t.Fatalf("successes = %d, want 2", pd.Count("success"))
	}
	// Metrics absent from some trials aggregate over the reporting ones.
	if vals := pd.Values("tu_med"); len(vals) != 2 {
		t.Fatalf("tu_med values = %v", vals)
	}
	if med := pd.Median("tu_med"); med != 6 {
		t.Fatalf("tu_med median = %v, want 6", med)
	}
	if f := pd.First("tu_med"); f != 5 {
		t.Fatalf("First = %v, want 5", f)
	}
	if !math.IsNaN(pd.Median("absent")) || !math.IsNaN(pd.Mean("absent")) {
		t.Fatal("absent metric must aggregate to NaN")
	}
	if _, ok := pd.Agg("absent"); ok {
		t.Fatal("absent metric must report !ok")
	}
}

func TestSuiteRegimes(t *testing.T) {
	quick := SuiteConfig{Seed: 1, Quick: true}
	full := SuiteConfig{Seed: 1}
	if len(gridFamilies(quick)) != 3 || len(gridFamilies(full)) != 4 {
		t.Fatalf("family sets wrong: quick=%d full=%d (full adds the torus family)",
			len(gridFamilies(quick)), len(gridFamilies(full)))
	}
	e1, _ := Get("E1")
	if quick.trialsFor(e1) >= full.trialsFor(e1) {
		t.Fatal("quick must run fewer trials")
	}
	if o := (SuiteConfig{Seed: 1, Trials: 9}); o.trialsFor(e1) != 9 {
		t.Fatal("Trials override ignored")
	}
	if len(lbAlphas(quick)) >= len(lbAlphas(full)) {
		t.Fatal("quick must sweep fewer alphas")
	}
	if quick.lbSize() >= full.lbSize() {
		t.Fatal("quick must use smaller lower-bound graphs")
	}
}

func TestMeasuredTmixTransitive(t *testing.T) {
	g, err := buildFamily("hypercube", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := measuredTmix(g)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 5 || tm > 200 {
		t.Fatalf("hypercube-32 tmix = %d out of plausible range", tm)
	}
}

func TestFormatterHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Fatalf("f1 = %q", f1(1.25))
	}
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" && f3(1.2345) != "1.235" {
		t.Fatalf("f2/f3 wrong: %q %q", f2(1.234), f3(1.2345))
	}
	if d(7) != "7" || d64(9) != "9" {
		t.Fatal("d/d64 wrong")
	}
	if g3(0.00123456) != "0.00123" {
		t.Fatalf("g3 = %q", g3(0.00123456))
	}
	if b2f(true) != 1 || b2f(false) != 0 {
		t.Fatal("b2f wrong")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := []Series{
		{Name: "a", Mark: 'o', Xs: []float64{10, 100, 1000}, Ys: []float64{1, 10, 100}},
		{Name: "b", Mark: 'x', Xs: []float64{10, 100, 1000}, Ys: []float64{5, 5, 5}},
	}
	out := ASCIIPlot("demo", "n", "y", true, true, s)
	if out == "" {
		t.Fatal("plot empty")
	}
	for _, want := range []string{"demo", "o=a", "x=b", "(log-log)", "x: n, y: y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Degenerate inputs must not panic and must render nothing.
	if ASCIIPlot("t", "x", "y", true, true, nil) != "" {
		t.Fatal("empty series should render nothing")
	}
	one := []Series{{Name: "a", Mark: 'o', Xs: []float64{5}, Ys: []float64{1}}}
	if ASCIIPlot("t", "x", "y", false, false, one) != "" {
		t.Fatal("single point should render nothing")
	}
	// Non-positive values on log axes are skipped, not plotted.
	neg := []Series{{Name: "a", Mark: 'o', Xs: []float64{-1, 10, 100}, Ys: []float64{0, 1, 2}}}
	if out := ASCIIPlot("t", "x", "y", true, true, neg); out == "" {
		t.Fatal("remaining positive points should still plot")
	}
}
