package experiments

// E23 is the cross-backend tournament: every contestant (the three
// election backends plus the dissemination substrates of the engine
// registry) × every graph family (clique/expander/torus/cycle) × every
// adversary (none / drop / crash / byzantine / byzantine+defense), one
// table of who computes the right answer at what message cost. The
// Byzantine column uses the active adversary of sim.Byzantine — a pinned
// minority whose every send is mutated in transit — and the defended
// column reruns the identical adversary with the protocol wrapped in
// committee-sampled validation (engine.WithCommittee via Config.Defend).
// Every cell runs through the one generic engine path the cluster runtime
// uses, so each cell is also reproducible over TCP (the Byzantine
// fault-parity battery in internal/cluster enforces bytewise agreement).

import (
	"fmt"

	"wcle/internal/algo"
	"wcle/internal/engine"
	"wcle/internal/sim"
)

// e23Backends lists the contestants in render order: the election
// backends (correctness = exactly one honest leader) and the
// dissemination substrates (correctness = every honest node holds the
// result). gilbertrs18-fixed and aggregate are left out: the former is a
// parameter baseline of gilbertrs18, the latter needs a protocol-specific
// ground truth the tournament's honest/dishonest split cannot state.
var e23Backends = []string{algo.GilbertRS18, algo.FloodMax, algo.KPPRT, engine.PushPull, engine.BFSTree}

// e23Families is the tournament's graph grid: the well-connected families
// of the paper plus the cycle, the deliberately badly-connected control
// (conductance Theta(1/n): the paper's guarantees do not apply, and the
// table should show it).
var e23Families = []struct {
	family string
	n      int
}{
	{"clique", 16},
	{"rr8", 32},
	{"torus", 16},
	{"cycle", 16},
}

// e23AdvFrac is the pinned adversary minority of the Byzantine columns.
const e23AdvFrac = 0.15

// e23Rumor is the dissemination ground truth: pushpull cells pass only
// when every honest node holds this exact rumor id (slot 2), so a forged
// rumor that "informs" a node still fails the cell.
const e23Rumor = 7

// e23Scenario is one adversary column of the tournament.
type e23Scenario struct {
	name   string
	defend bool
	// byz marks the active-adversary columns (the only ones with a
	// non-empty adversary set).
	byz   bool
	plane func(adv []int) sim.FaultPlane
}

// e23Scenarios enumerates the adversary columns in render order. Omission
// parameters match the fault-conformance battery's mild regime; the
// Byzantine columns pin the same per-trial adversary set so the defended
// rerun faces the identical attack.
func e23Scenarios() []e23Scenario {
	return []e23Scenario{
		{name: "none", plane: func([]int) sim.FaultPlane { return nil }},
		{name: "drop5", plane: func([]int) sim.FaultPlane { return &sim.Drop{P: 0.05} }},
		{name: "crash20", plane: func([]int) sim.FaultPlane { return &sim.CrashSample{Frac: 0.20, Round: 2} }},
		{name: "byz15", byz: true, plane: func(adv []int) sim.FaultPlane { return &sim.Byzantine{Nodes: adv} }},
		{name: "byz15+defend", byz: true, defend: true, plane: func(adv []int) sim.FaultPlane { return &sim.Byzantine{Nodes: adv} }},
	}
}

// e23Adversaries pins the trial's adversary set: ~15% of the nodes,
// sampled from the trial seed (never the run seed), so the experiment
// knows the honest set by construction and can judge honest leadership.
func e23Adversaries(n int, seed int64) []int {
	k := int(e23AdvFrac * float64(n))
	if k < 1 {
		k = 1
	}
	adv := append([]int(nil), sim.NewRand(sim.DeriveSeed(seed, 0xF0E)).Perm(n)[:k]...)
	return adv
}

// e23Config resolves one cell's engine configuration. Horizon-driven
// protocols need their decision round stretched under the defense: the
// committee wrapper re-transmits every logical send as Copies claim
// frames, so one logical hop costs a few physical rounds.
func e23Config(backend string, n int, defend bool) engine.Config {
	cfg := engine.Config{Defend: defend}
	switch backend {
	case engine.PushPull:
		cfg.Rumor = e23Rumor
		cfg.Horizon = 8 * n
		if defend {
			cfg.Horizon = 30 * n
		}
	case algo.FloodMax:
		if defend {
			cfg.Horizon = 6 * n
		}
	}
	return cfg
}

// e23Correct judges one cell run against the honest set: elections must
// produce exactly one honest node claiming leadership (slot 0 of the
// election backends' output contract); dissemination substrates must
// reach every honest node (slot 0 of pushpull/bfstree), and pushpull
// additionally must deliver the authentic rumor — slot 2 is the held
// rumor id, and a node informed by a forged rumor fails the cell
// (bfstree's join is flag-only and its depth self-measured, so payload
// forgery has nothing to corrupt there). Adversarial outputs are ignored
// — a Byzantine node's decision vector is arbitrary by definition.
func e23Correct(backend string, outputs [][]int64, adv []int) bool {
	bad := make(map[int]bool, len(adv))
	for _, v := range adv {
		bad[v] = true
	}
	switch backend {
	case engine.PushPull, engine.BFSTree:
		for v, o := range outputs {
			if bad[v] {
				continue
			}
			if o[0] != 1 {
				return false
			}
			if backend == engine.PushPull && o[2] != e23Rumor {
				return false
			}
		}
		return true
	default:
		leaders := 0
		for v, o := range outputs {
			if !bad[v] && o[0] == 1 {
				leaders++
			}
		}
		return leaders == 1
	}
}

// e23Spec renders the tournament.
func e23Spec() Spec {
	return Spec{
		ID:    "E23",
		Name:  "tournament",
		Title: "Adversary tournament: backend × graph family × adversary, with the committee defense",
		Claim: "Robustness portrait under active (Byzantine) adversaries; committee-sampled validation as the defense (byzcoin-shaped)",
		Preamble: "Every contestant of the protocol registry runs the identical gauntlet through the one generic engine path: perfect delivery, 5% drops, a 20% crash at round 2, a pinned ~15% Byzantine minority whose every send is mutated in transit (equivocation, forgery, bit corruption on the canonical wire encoding — sim.Byzantine), and the same Byzantine minority with the protocol wrapped in committee-sampled validation (engine.WithCommittee: every logical send travels as repeated claim frames, receivers reject claims without a byte-identical quorum, committee-attested digests deliver on first receipt). " +
			"A cell reads ok-trials/trials · median messages; 'abort' marks runs the engine terminated detectably (a forged payload tripping a protocol's validation, or a round cap). " +
			"Correctness is judged on the honest set only: elections must elect exactly one honest leader, dissemination must reach every honest node — and pushpull must deliver the authentic rumor id, so a forged rumor that merely marks nodes informed still fails the cell. " +
			"Expected shape: flooding tolerates omission but drinks forged payloads undefended; the defense restores dissemination at a ~3x message bill; walk-based elections abort or go silent under forgery rather than electing an adversary.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, b := range e23Backends {
				for _, f := range e23Families {
					if cfg.MaxN > 0 && cfg.MaxN < f.n {
						continue
					}
					out = append(out, Point{
						Key:    b + "/" + f.family,
						Label:  b,
						Family: f.family,
						N:      f.n,
					})
				}
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily(pt.Family, pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			adv := e23Adversaries(pt.N, seed)
			m := Metrics{}
			for _, sc := range e23Scenarios() {
				p, err := engine.New(pt.Label, e23Config(pt.Label, pt.N, sc.defend))
				if err != nil {
					return nil, err
				}
				var advSet []int
				if sc.byz {
					advSet = adv
				}
				res, err := engine.Run(p, g, engine.Options{
					Seed:        sim.DeriveSeed(seed, 0xB),
					LeanMetrics: true,
					Fault:       sc.plane(advSet),
				})
				if err != nil {
					// A detectable abort is a legitimate tournament outcome
					// (deterministic per seed — the conformance battery
					// enforces that); it scores zero and is labeled.
					m["ok_"+sc.name] = 0
					m["abort_"+sc.name] = 1
					m["msgs_"+sc.name] = 0
					m["mutated_"+sc.name] = 0
					continue
				}
				m["ok_"+sc.name] = b2f(e23Correct(pt.Label, res.Outputs, advSet))
				m["abort_"+sc.name] = 0
				m["msgs_"+sc.name] = float64(res.Metrics.Messages)
				m["mutated_"+sc.name] = float64(res.Metrics.Mutated)
			}
			return m, nil
		},
		Render: renderE23,
	}
}

func renderE23(cfg SuiteConfig, data []PointData) (*Table, error) {
	scens := e23Scenarios()
	cols := []string{"backend", "graph", "n"}
	for _, sc := range scens {
		cols = append(cols, sc.name)
	}
	t := &Table{
		ID:      "E23",
		Title:   "Adversary tournament: backend × graph family × adversary, with the committee defense",
		Columns: cols,
	}
	for _, pd := range data {
		trials := len(pd.Trials)
		row := []string{pd.Point.Label, pd.Point.Family, d(pd.Point.N)}
		for _, sc := range scens {
			if trials == 0 {
				row = append(row, "-")
				continue
			}
			if pd.Count("abort_"+sc.name) == trials {
				row = append(row, "abort")
				continue
			}
			row = append(row, fmt.Sprintf("%d/%d · %s",
				pd.Count("ok_"+sc.name), trials, d64(int64(pd.Median("msgs_"+sc.name)))))
		}
		t.AddRow(row...)
	}
	t.AddNote("Cells read ok-trials/trials · median messages; 'abort' means every trial terminated detectably (a forged payload tripping protocol validation, or the round cap). Correctness is judged on honest nodes only: elections need exactly one honest leader, pushpull/bfstree need every honest node reached, and pushpull additionally needs the authentic rumor id at every honest node (its output slot 2 is the integrity witness; bfstree's flag-only joins leave payload forgery nothing to corrupt, hence its robust byz column). The byz columns pin the same ~15%% adversary minority per trial, undefended and defended, so the defense faces the identical attack.")
	t.AddNote("crash20 fails dissemination rows by definition — a node crashed at round 2 cannot be informed — and fails elections when the eventual winner's flood died with a crashed node; both are honest liveness losses, not judging artifacts. The cycle rows are the control: conductance Theta(1/n) is outside the paper's well-connected regime, and the walk-based backends' round schedules show it.")
	t.AddNote("The defense (engine.WithCommittee, Config.Defend) retransmits every logical send as 3 claim copies with a receive quorum of 2 and a sqrt(deg) committee fast path, so its message bill is a constant factor over the undefended run — the tournament's price-of-defense column pair. Same-seed defended and undefended cells replay byte-identically over the TCP cluster (TestClusterByzantineProtocolParity* in internal/cluster).")
	return t, nil
}
