package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"wcle/internal/sim"
	"wcle/internal/stats"
)

// ResultsSchema versions the checkpoint/results JSON layout.
const ResultsSchema = 1

// Results holds the raw per-trial metrics of a (possibly partial) suite
// run, keyed by unit key "<experiment>|<point>|<trial>". It is both the
// harness's checkpoint format and the -json output of cmd/benchsuite; its
// canonical JSON encoding is byte-identical for identical configurations
// regardless of worker count or completion order.
type Results struct {
	Schema int                `json:"schema"`
	Seed   int64              `json:"seed"`
	Quick  bool               `json:"quick"`
	Trials int                `json:"trials_override,omitempty"`
	MaxN   int                `json:"max_n,omitempty"`
	Units  map[string]Metrics `json:"units"`
}

// NewResults returns an empty Results for a configuration.
func NewResults(cfg SuiteConfig) *Results {
	return &Results{Schema: ResultsSchema, Seed: cfg.Seed, Quick: cfg.Quick,
		Trials: cfg.Trials, MaxN: cfg.MaxN, Units: make(map[string]Metrics)}
}

// CanonicalJSON marshals the results deterministically (encoding/json
// sorts map keys) with a trailing newline.
func (r *Results) CanonicalJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Matches reports whether the results were produced under cfg (the resume
// safety check).
func (r *Results) Matches(cfg SuiteConfig) bool {
	return r.Schema == ResultsSchema && r.Seed == cfg.Seed && r.Quick == cfg.Quick &&
		r.Trials == cfg.Trials && r.MaxN == cfg.MaxN
}

// LoadResults reads a results/checkpoint JSON file.
func LoadResults(path string) (*Results, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Results
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("experiments: corrupt results file %s: %w", path, err)
	}
	if r.Units == nil {
		r.Units = make(map[string]Metrics)
	}
	return &r, nil
}

// UnitKey builds the stable key of one trial's metrics in Results.Units.
func UnitKey(dataID, pointKey string, trial int) string {
	return fmt.Sprintf("%s|%s|%d", dataID, pointKey, trial)
}

// SeedForKey derives the deterministic seed of one unit of work (a trial,
// a point's setup, or a service-layer job) from a master seed and the
// unit's stable string key, so results are independent of worker count and
// execution order. This is the repo-wide seed-derivation contract: every
// layer that fans work out (the harness here, the electd scheduler in
// internal/serve) goes through it so identical keys replay identically.
func SeedForKey(master int64, key string) int64 {
	return sim.SeedForKey(master, key)
}

// trialSeed is the harness-internal alias of SeedForKey.
func trialSeed(master int64, key string) int64 { return SeedForKey(master, key) }

// setupSlot lazily computes a point's Setup exactly once across workers.
type setupSlot struct {
	once sync.Once
	val  interface{}
	err  error
}

// unit is one schedulable trial.
type unit struct {
	spec  Spec // the data-owning spec
	point Point
	trial int
	key   string
	slot  *setupSlot
}

// Harness runs experiment specs on a worker pool. The zero value is
// usable: full regime semantics come from Config, Workers defaults to
// runtime.NumCPU(), and no checkpointing happens unless CheckpointPath is
// set.
type Harness struct {
	Config SuiteConfig
	// Workers is the worker-pool size (0 = runtime.NumCPU()).
	Workers int
	// CheckpointPath, when set, is loaded before the run (completed units
	// are skipped) and rewritten atomically every CheckpointEvery
	// completions and at the end.
	CheckpointPath string
	// CheckpointEvery is the flush interval in completed units
	// (0 = adaptive: pending/8, clamped to [1, 32]).
	CheckpointEvery int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress func(format string, args ...interface{})
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Progress != nil {
		h.Progress(format, args...)
	}
}

// Run executes the trials of the named experiments (nil = all) and
// returns the accumulated raw results. Experiments that are views
// (DataFrom) contribute their data experiment's trials; shared data is
// scheduled once even when several selected experiments depend on it.
func (h *Harness) Run(ids []string) (*Results, error) {
	specs, err := Resolve(ids)
	if err != nil {
		return nil, err
	}

	// Collect the data-owning specs, deduplicated, in registry order.
	needData := make(map[string]string) // data id -> a spec that needs it
	for _, s := range specs {
		needData[s.DataID()] = s.ID
	}
	var dataSpecs []Spec
	for _, s := range All() {
		if _, ok := needData[s.ID]; ok && s.DataFrom == "" {
			dataSpecs = append(dataSpecs, s)
		}
	}
	for id, by := range needData {
		if s, ok := Get(id); !ok || s.DataFrom != "" {
			return nil, fmt.Errorf("experiments: %s names data experiment %q which does not own data", by, id)
		}
	}

	res := NewResults(h.Config)
	if h.CheckpointPath != "" {
		if prev, err := LoadResults(h.CheckpointPath); err == nil {
			if !prev.Matches(h.Config) {
				return nil, fmt.Errorf("experiments: checkpoint %s was written under a different configuration (seed/regime/trials/max-n); refusing to mix results", h.CheckpointPath)
			}
			res = prev
			h.logf("resuming from %s: %d units already done", h.CheckpointPath, len(res.Units))
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}

	// Enumerate pending units; one setup slot per point, shared by its
	// trials.
	var units []unit
	total := 0
	for _, s := range dataSpecs {
		trials := h.Config.trialsFor(s)
		for _, pt := range s.Points(h.Config) {
			slot := &setupSlot{}
			for i := 0; i < trials; i++ {
				total++
				key := UnitKey(s.ID, pt.Key, i)
				if _, done := res.Units[key]; done {
					continue
				}
				units = append(units, unit{spec: s, point: pt, trial: i, key: key, slot: slot})
			}
		}
	}
	h.logf("%d/%d units pending", len(units), total)
	if len(units) == 0 {
		return res, h.saveCheckpoint(res)
	}

	workers := h.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(units) {
		workers = len(units)
	}
	// Default flush cadence: often enough that interrupting a small suite
	// of expensive units loses little work, capped so huge sampling suites
	// don't re-marshal the results map on every completion.
	every := h.CheckpointEvery
	if every <= 0 {
		every = len(units) / 8
		if every < 1 {
			every = 1
		}
		if every > 32 {
			every = 32
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     int
		wg       sync.WaitGroup
		quit     = make(chan struct{})
		quitOnce sync.Once
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		quitOnce.Do(func() { close(quit) })
	}
	jobs := make(chan unit)
	go func() {
		defer close(jobs)
		for _, u := range units {
			select {
			case jobs <- u:
			case <-quit:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				m, err := h.runUnit(u)
				if err != nil {
					fail(fmt.Errorf("%s: %w", u.key, err))
					return
				}
				mu.Lock()
				res.Units[u.key] = m
				done++
				flush := h.CheckpointPath != "" && done%every == 0
				var saveErr error
				if flush {
					saveErr = h.saveCheckpoint(res)
				}
				n := done
				mu.Unlock()
				if saveErr != nil {
					fail(saveErr)
					return
				}
				if n%50 == 0 || n == len(units) {
					h.logf("%d/%d units done", n, len(units))
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// Preserve completed work for resume even on failure.
		mu.Lock()
		_ = h.saveCheckpoint(res)
		mu.Unlock()
		return nil, firstErr
	}
	return res, h.saveCheckpoint(res)
}

// runUnit executes one trial, lazily performing its point's setup.
func (h *Harness) runUnit(u unit) (Metrics, error) {
	var setup interface{}
	if u.spec.Setup != nil {
		u.slot.once.Do(func() {
			seed := trialSeed(h.Config.Seed, u.spec.ID+"|"+u.point.Key+"|setup")
			u.slot.val, u.slot.err = u.spec.Setup(h.Config, u.point, seed)
		})
		if u.slot.err != nil {
			return nil, fmt.Errorf("setup: %w", u.slot.err)
		}
		setup = u.slot.val
	}
	m, err := u.spec.Trial(h.Config, u.point, setup, trialSeed(h.Config.Seed, u.key))
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, errors.New("trial returned nil metrics")
	}
	return m, nil
}

// saveCheckpoint atomically rewrites the checkpoint file (no-op without a
// path). Callers must hold the harness results lock.
func (h *Harness) saveCheckpoint(res *Results) error {
	if h.CheckpointPath == "" {
		return nil
	}
	b, err := res.CanonicalJSON()
	if err != nil {
		return err
	}
	tmp := h.CheckpointPath + ".tmp"
	if err := os.MkdirAll(filepath.Dir(h.CheckpointPath), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, h.CheckpointPath)
}

// PointData is one point's aggregated view for rendering: the point plus
// its trials' metrics in trial order.
type PointData struct {
	Point  Point
	Trials []Metrics
}

// Values collects a metric across trials, skipping trials that did not
// report it.
func (p PointData) Values(metric string) []float64 {
	var out []float64
	for _, m := range p.Trials {
		if v, ok := m[metric]; ok && !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Agg aggregates a metric across trials (ok=false if no trial reported it).
func (p PointData) Agg(metric string) (stats.Agg, bool) {
	a, err := stats.Aggregate(p.Values(metric))
	if err != nil {
		return stats.Agg{}, false
	}
	return a, true
}

// Median returns the metric's median across trials (NaN if absent).
func (p PointData) Median(metric string) float64 {
	a, ok := p.Agg(metric)
	if !ok {
		return math.NaN()
	}
	return a.Median
}

// Mean returns the metric's mean across trials (NaN if absent).
func (p PointData) Mean(metric string) float64 {
	a, ok := p.Agg(metric)
	if !ok {
		return math.NaN()
	}
	return a.Mean
}

// Sum returns the metric's sum across trials (0/1 metrics become counts).
func (p PointData) Sum(metric string) float64 {
	var s float64
	for _, v := range p.Values(metric) {
		s += v
	}
	return s
}

// Count returns Sum rounded to an int (for 0/1 metrics).
func (p PointData) Count(metric string) int { return int(math.Round(p.Sum(metric))) }

// First returns the metric from the lowest-index trial reporting it (for
// per-point constants recorded as metrics).
func (p PointData) First(metric string) float64 {
	for _, m := range p.Trials {
		if v, ok := m[metric]; ok {
			return v
		}
	}
	return math.NaN()
}

// DataFor assembles the aggregated per-point data a spec renders from raw
// results. Every point must have at least one completed trial.
func DataFor(s Spec, cfg SuiteConfig, res *Results) ([]PointData, error) {
	data, ok := Get(s.DataID())
	if !ok {
		return nil, fmt.Errorf("experiments: %s: unknown data experiment %q", s.ID, s.DataID())
	}
	trials := cfg.trialsFor(data)
	var out []PointData
	for _, pt := range data.Points(cfg) {
		pd := PointData{Point: pt}
		for i := 0; i < trials; i++ {
			if m, ok := res.Units[UnitKey(data.ID, pt.Key, i)]; ok {
				pd.Trials = append(pd.Trials, m)
			}
		}
		if len(pd.Trials) == 0 {
			return nil, fmt.Errorf("experiments: %s: no results for point %s of %s (run experiment %s first)",
				s.ID, pt.Key, data.ID, data.ID)
		}
		out = append(out, pd)
	}
	return out, nil
}

// RunOne is the convenience wrapper behind the wcle.RunExperiment facade:
// run a single experiment on the default worker pool and render its table.
func RunOne(cfg SuiteConfig, id string) (*Table, error) {
	spec, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	h := &Harness{Config: cfg}
	res, err := h.Run([]string{id})
	if err != nil {
		return nil, err
	}
	data, err := DataFor(spec, cfg, res)
	if err != nil {
		return nil, err
	}
	tab, err := spec.Render(cfg, data)
	if err != nil {
		return nil, err
	}
	tab.Preamble = spec.Preamble
	return tab, nil
}

// elected formats "k successes out of t trials".
func elected(k, t int) string { return fmt.Sprintf("%d/%d", k, t) }

// sortedPointKeys is a debugging helper: the unit keys of res in order.
func sortedPointKeys(res *Results) []string {
	keys := make([]string, 0, len(res.Units))
	for k := range res.Units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
