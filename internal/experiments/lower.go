package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/broadcast"
	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/lowerbound"
	"wcle/internal/spectral"
)

// lbAlphas returns the conductance scales swept by the lower-bound
// experiments (all inside Theorem 15's (1/n^2, 1/144) window).
func (s *Suite) lbAlphas() []float64 {
	if s.Quick {
		return []float64{1.0 / 196}
	}
	return []float64{1.0 / 196, 1.0 / 324, 1.0 / 576}
}

func (s *Suite) lbSize() int {
	if s.Quick {
		return 512
	}
	return 1024
}

// E8LowerBoundGraph validates the Section 4.1 construction (Figures 1 and
// 2) and Lemma 16: conductance Theta(alpha).
func (s *Suite) E8LowerBoundGraph() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Lemma 16 / Figures 1-2: the lower-bound graph G(n, alpha) has conductance Theta(alpha)",
		Columns: []string{"alpha", "eps", "clique size s", "cliques N", "n", "m", "degree",
			"clique-cut phi", "sweep phi", "phi/alpha"},
	}
	for i, alpha := range s.lbAlphas() {
		lb, err := graph.NewLowerBound(s.lbSize(), alpha, rand.New(rand.NewSource(s.Seed+int64(i))))
		if err != nil {
			return nil, err
		}
		if err := lb.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: lower-bound graph invalid: %w", err)
		}
		deg, regular := graph.IsRegular(lb.Graph)
		if !regular {
			return nil, fmt.Errorf("experiments: lower-bound graph not regular")
		}
		if sd, ok := graph.IsRegular(lb.Super); !ok || sd != 4 {
			return nil, fmt.Errorf("experiments: super graph not 4-regular (Figure 1)")
		}
		inSet := make([]bool, lb.N())
		for _, v := range lb.Cliques[0] {
			inSet[v] = true
		}
		cliquePhi := graph.CutConductance(lb.Graph, inSet)
		sweepPhi, _, err := spectral.SweepCut(lb.Graph, 4000, 1e-10)
		if err != nil {
			return nil, err
		}
		best := math.Min(cliquePhi, sweepPhi)
		t.AddRow(g3(alpha), f3(lb.Epsilon), d(lb.CliqueSize), d(lb.NumCliques), d(lb.N()), d(lb.M()),
			d(deg), g3(cliquePhi), g3(sweepPhi), f2(best/alpha))
	}
	t.AddNote("Figure 1 (random 4-regular super graph) and Figure 2 (cliques with two removed intra-edges, uniform degree) structural checks pass by construction validation. phi/alpha flat across the sweep is Lemma 16's Theta(alpha).")
	return t, nil
}

// E9InterCliqueDiscovery reproduces Lemma 18: a clique must spend
// Theta(n^{2 eps}) = Theta(1/alpha) messages before finding an inter-clique
// edge when ports are random and unknown.
func (s *Suite) E9InterCliqueDiscovery() (*Table, error) {
	trials := 4000
	if s.Quick {
		trials = 1000
	}
	t := &Table{
		ID:      "E9",
		Title:   "Lemma 18: messages before the first inter-clique edge (port probing)",
		Columns: []string{"alpha", "clique ports P", "mean probe msgs", "(P+1)/5", "mean * alpha", "paper bound n^{2eps}/8 * alpha"},
	}
	rng := rand.New(rand.NewSource(s.Seed + 41))
	for i, alpha := range s.lbAlphas() {
		lb, err := graph.NewLowerBound(s.lbSize(), alpha, rand.New(rand.NewSource(s.Seed+int64(i))))
		if err != nil {
			return nil, err
		}
		// Ports of one clique: s nodes of degree s-1 (four of them carry a
		// bridge port among these).
		ports := lb.CliqueSize * (lb.CliqueSize - 1)
		var sum float64
		for k := 0; k < trials; k++ {
			sum += float64(lowerbound.ProbeFirstInterClique(ports, 4, rng))
		}
		mean := sum / float64(trials)
		expected := float64(ports+1) / 5
		paperRef := math.Pow(float64(s.lbSize()), 2*lb.Epsilon) / 8 * alpha
		t.AddRow(g3(alpha), d(ports), f1(mean), f1(expected), f3(mean*alpha), f3(paperRef))
	}
	t.AddNote("mean * alpha flat across the sweep reproduces the Theta(1/alpha) = Theta(n^{2 eps}) shape of Lemma 18 (the constant differs from the paper's 1/8 because sampling here is without replacement and P counts s(s-1) ports).")
	return t, nil
}

// E10BudgetedElection reproduces the Lemma 19-25 chain: under a message
// budget of M * n^{2 eps}, the clique communication graph stays sparse
// (O(M) edges), components stay disjoint (Disj), and the election ends with
// zero or multiple leaders.
func (s *Suite) E10BudgetedElection() (*Table, error) {
	trials := 3
	if s.Quick {
		trials = 2
	}
	alpha := 1.0 / 196
	t := &Table{
		ID:    "E10",
		Title: "Theorem 15 / Lemmas 19-25: budgeted election on G(n, alpha): CG sparsity, Disj, and failure",
		Columns: []string{"budget (x 1/alpha)", "messages allowed", "mean CG edges", "CG edges / M",
			"Disj held", "zero leaders", "one leader", "multi"},
	}
	for _, mult := range []int{1, 8, 32, 128} {
		budget := int64(mult) * int64(1/alpha)
		var cgSum float64
		var disj, zero, one, multi int
		for i := 0; i < trials; i++ {
			lb, err := graph.NewLowerBound(s.lbSize(), alpha, rand.New(rand.NewSource(s.Seed+int64(10*i))))
			if err != nil {
				return nil, err
			}
			tr := lowerbound.NewCGTracker(lb)
			cfg := core.DefaultConfig()
			cfg.MaxWalkLen = 64 // the budget bites long before longer walks matter
			res, err := core.Run(lb.Graph, cfg, core.RunOptions{
				Seed: s.Seed + 500 + int64(i), Budget: budget, Observer: tr,
			})
			if err != nil {
				return nil, err
			}
			cgSum += float64(tr.CGEdges())
			if tr.DisjHolds() {
				disj++
			}
			switch len(res.Leaders) {
			case 0:
				zero++
			case 1:
				one++
			default:
				multi++
			}
		}
		meanCG := cgSum / float64(trials)
		t.AddRow(d(mult), d64(budget), f1(meanCG), f3(meanCG/float64(mult)),
			fmt.Sprintf("%d/%d", disj, trials),
			d(zero), d(one), d(multi))
	}
	t.AddNote("Lemma 19: CG edges grow at most linearly in the budget multiplier M (the 'CG edges / M' column must not grow; it falls). Lemma 20 assumes M = o(sqrt(N)) (sqrt(N) ~ 8.5 at this size): Disj holds in the small-M rows and degrades once M crosses that threshold, exactly matching the hypothesis. Lemmas 24/25: with a budget below the Theorem 15 threshold the run ends with zero (or multiple) leaders — never a clean single election.")
	return t, nil
}

// E11BroadcastST reproduces Corollaries 26/27: broadcast and spanning-tree
// construction need Omega(n/sqrt(phi)) messages on G(n, alpha).
func (s *Suite) E11BroadcastST() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Corollaries 26/27: broadcast and spanning tree on G(n, alpha) cost Theta(n/sqrt(phi))",
		Columns: []string{"alpha", "n", "m", "n/sqrt(alpha)", "bfs-tree msgs", "bfs/ref",
			"push-pull msgs", "pp rounds", "pp covered"},
	}
	for i, alpha := range s.lbAlphas() {
		lb, err := graph.NewLowerBound(s.lbSize(), alpha, rand.New(rand.NewSource(s.Seed+int64(i))))
		if err != nil {
			return nil, err
		}
		ref := float64(lb.N()) / math.Sqrt(alpha)
		tree, err := broadcast.BFSTree(lb.Graph, 0, s.Seed+61)
		if err != nil {
			return nil, err
		}
		if !tree.Complete {
			return nil, fmt.Errorf("experiments: BFS tree incomplete on lower-bound graph")
		}
		// Push-pull through the Theta(alpha) bottleneck: horizon scaled by
		// log(n)/phi with the clique-cut conductance as phi.
		phi := 4.0 / float64(lb.CliqueSize*(lb.CliqueSize-1))
		horizon := int(6 * math.Log(float64(lb.N())) / phi)
		pp, err := broadcast.PushPull(lb.Graph, 0, 99, s.Seed+67, horizon, false)
		if err != nil {
			return nil, err
		}
		ppRounds := pp.CompletionRound
		if ppRounds < 0 {
			ppRounds = horizon
		}
		t.AddRow(g3(alpha), d(lb.N()), d(lb.M()), f1(ref),
			d64(tree.Metrics.Messages), f3(float64(tree.Metrics.Messages)/ref),
			d64(pp.Metrics.Messages), d(ppRounds),
			fmt.Sprintf("%d/%d", pp.Informed, lb.N()))
	}
	t.AddNote("On G(n, alpha), m = Theta(n * n^{eps}) = Theta(n/sqrt(alpha)), so flooding-based algorithms land exactly on the corollaries' Omega(n/sqrt(phi)) line: 'bfs/ref' is the flat shape. Push-pull must pay the conductance bottleneck in rounds (and therefore messages).")
	return t, nil
}

// E12Dumbbell reproduces Theorem 28 / Section 5: without (correct)
// knowledge of n, the two halves of a dumbbell are indistinguishable from
// standalone graphs and elect independently; and solving bridge crossing
// costs Omega(m) messages.
func (s *Suite) E12Dumbbell() (*Table, error) {
	trials := 3
	t := &Table{
		ID:    "E12",
		Title: "Theorem 28: the knowledge of n is critical (dumbbell graphs)",
		Columns: []string{"setting", "trials", "two leaders (one/side)", "one leader", "zero",
			"mean bridge crossings", "mean msgs before first cross", "m"},
	}
	// Setting A: clique dumbbell, nodes believe n = half, contenders kept
	// off the bridge endpoints (the indistinguishability regime).
	half := 24
	runSetting := func(wrongN bool) (two, oneL, zero int, cross, before float64, m int, err error) {
		for i := 0; i < trials; i++ {
			db, err := graph.NewDumbbellCliques(half, rand.New(rand.NewSource(s.Seed+int64(70+i))))
			if err != nil {
				return 0, 0, 0, 0, 0, 0, err
			}
			m = db.M()
			cfg := core.DefaultConfig()
			if wrongN {
				cfg.AssumedN = db.Half
				cfg.DisableDistinctness = true
				bridge := map[int]bool{
					db.Bridges[0].U: true, db.Bridges[0].V: true,
					db.Bridges[1].U: true, db.Bridges[1].V: true,
				}
				var conts []int
				for v := 0; v < db.N(); v++ {
					if !bridge[v] {
						conts = append(conts, v)
					}
				}
				cfg.ForcedContenders = conts
			}
			tr := lowerbound.NewBridgeTracker(db)
			res, err := core.Run(db.Graph, cfg, core.RunOptions{Seed: s.Seed + int64(80+i), Observer: tr})
			if err != nil {
				return 0, 0, 0, 0, 0, 0, err
			}
			sides := map[int]bool{}
			for _, l := range res.Leaders {
				sides[db.SideOf[l]] = true
			}
			switch {
			case len(res.Leaders) == 2 && len(sides) == 2:
				two++
			case len(res.Leaders) == 1:
				oneL++
			case len(res.Leaders) == 0:
				zero++
			}
			cross += float64(tr.Crossings)
			if tr.FirstCrossRound >= 0 {
				before += float64(tr.MsgsBeforeCross)
			} else {
				before += float64(tr.TotalMessages)
			}
		}
		return two, oneL, zero, cross / float64(trials), before / float64(trials), m, nil
	}
	two, oneL, zero, cross, before, m, err := runSetting(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("believed n = half", d(trials), d(two), d(oneL), d(zero), f1(cross), f1(before), d(m))
	two, oneL, zero, cross, before, m, err = runSetting(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("true n known", d(trials), d(two), d(oneL), d(zero), f1(cross), f1(before), d(m))
	t.AddNote("With the wrong n, both halves elect before any message crosses a bridge (two leaders, zero crossings) — exactly Observation 31's indistinguishability; 'msgs before first cross' then counts a whole election's traffic with no crossing at all. With the true n the algorithm is never fooled into two leaders, but the dumbbell is not well-connected (tmix exceeds the walk cap), so runs may end with zero leaders, and the messages spent before the first bridge crossing exceed m — the Theorem 28 Omega(m) bridge-crossing regime.")
	return t, nil
}
