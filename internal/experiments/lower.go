package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/broadcast"
	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/lowerbound"
	"wcle/internal/sim"
	"wcle/internal/spectral"
)

// lbAlphas returns the conductance scales swept by the lower-bound
// experiments (all inside Theorem 15's (1/n^2, 1/144) window).
func lbAlphas(cfg SuiteConfig) []float64 {
	if cfg.Quick {
		return []float64{1.0 / 196}
	}
	return []float64{1.0 / 196, 1.0 / 324, 1.0 / 576}
}

// lbPoints enumerates one point per alpha.
func lbPoints(cfg SuiteConfig) []Point {
	var out []Point
	for _, alpha := range lbAlphas(cfg) {
		out = append(out, Point{Key: "alpha-" + g3(alpha), Alpha: alpha, N: cfg.lbSize()})
	}
	return out
}

// e8Spec validates the Section 4.1 construction (Figures 1 and 2) and
// Lemma 16: conductance Theta(alpha).
func e8Spec() Spec {
	return Spec{
		ID:    "E8",
		Name:  "lower-bound-graph",
		Title: "Lemma 16 / Figures 1-2: the lower-bound graph G(n, alpha) has conductance Theta(alpha)",
		Claim: "Lemma 16 and the Figure 1/2 construction",
		Preamble: "The lower-bound half of the paper builds a clique-of-cliques G(n, alpha) whose conductance is tunable: Lemma 16 claims phi = Theta(alpha). " +
			"This check instantiates the Figure 1/2 construction across the alpha range, verifies regularity, and measures the conductance two ways (the designed clique cut and a spectral sweep cut); phi/alpha should sit at a modest constant across two orders of magnitude of alpha.",
		FullTrials:  1,
		QuickTrials: 1,
		Points:      lbPoints,
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			lb, err := graph.NewLowerBound(pt.N, pt.Alpha, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			if err := lb.Validate(); err != nil {
				return nil, fmt.Errorf("experiments: lower-bound graph invalid: %w", err)
			}
			deg, regular := graph.IsRegular(lb.Graph)
			if !regular {
				return nil, fmt.Errorf("experiments: lower-bound graph not regular")
			}
			if sd, ok := graph.IsRegular(lb.Super); !ok || sd != 4 {
				return nil, fmt.Errorf("experiments: super graph not 4-regular (Figure 1)")
			}
			inSet := make([]bool, lb.N())
			for _, v := range lb.Cliques[0] {
				inSet[v] = true
			}
			cliquePhi := graph.CutConductance(lb.Graph, inSet)
			sweepPhi, _, err := spectral.SweepCut(lb.Graph, 4000, 1e-10)
			if err != nil {
				return nil, err
			}
			return Metrics{
				"eps":        lb.Epsilon,
				"s":          float64(lb.CliqueSize),
				"cliques":    float64(lb.NumCliques),
				"n":          float64(lb.N()),
				"m":          float64(lb.M()),
				"deg":        float64(deg),
				"clique_phi": cliquePhi,
				"sweep_phi":  sweepPhi,
			}, nil
		},
		Render: renderE8,
	}
}

func renderE8(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Lemma 16 / Figures 1-2: the lower-bound graph G(n, alpha) has conductance Theta(alpha)",
		Columns: []string{"alpha", "eps", "clique size s", "cliques N", "n", "m", "degree",
			"clique-cut phi", "sweep phi", "phi/alpha"},
	}
	for _, pd := range data {
		cliquePhi, sweepPhi := pd.First("clique_phi"), pd.First("sweep_phi")
		best := math.Min(cliquePhi, sweepPhi)
		t.AddRow(g3(pd.Point.Alpha), f3(pd.First("eps")), d(int(pd.First("s"))),
			d(int(pd.First("cliques"))), d(int(pd.First("n"))), d(int(pd.First("m"))),
			d(int(pd.First("deg"))), g3(cliquePhi), g3(sweepPhi), f2(best/pd.Point.Alpha))
	}
	t.AddNote("Figure 1 (random 4-regular super graph) and Figure 2 (cliques with two removed intra-edges, uniform degree) structural checks pass by construction validation. phi/alpha flat across the sweep is Lemma 16's Theta(alpha).")
	return t, nil
}

// e9Spec reproduces Lemma 18: a clique must spend Theta(n^{2 eps}) =
// Theta(1/alpha) messages before finding an inter-clique edge when ports
// are random and unknown. One trial = a batch of probe simulations.
func e9Spec() Spec {
	const probesPerTrial = 100
	return Spec{
		ID:    "E9",
		Name:  "inter-clique-discovery",
		Title: "Lemma 18: messages before the first inter-clique edge (port probing)",
		Claim: "Lemma 18 (Theta(1/alpha) probes to find an inter-clique edge)",
		Preamble: "Why is low conductance expensive? Lemma 18's engine: a node probing random unused ports needs Theta(1/alpha) messages in expectation before it first crosses its clique's boundary. " +
			"The probe process runs on G(n, alpha) directly; mean probes times alpha should be a constant across the alpha sweep.",
		FullTrials:  40,
		QuickTrials: 10,
		Points:      lbPoints,
		Setup: func(cfg SuiteConfig, pt Point, seed int64) (interface{}, error) {
			lb, err := graph.NewLowerBound(pt.N, pt.Alpha, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			return lb, nil
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			lb := setup.(*graph.LowerBound)
			// Ports of one clique: s nodes of degree s-1 (four of them carry
			// a bridge port among these).
			ports := lb.CliqueSize * (lb.CliqueSize - 1)
			rng := rand.New(rand.NewSource(seed))
			var sum float64
			for k := 0; k < probesPerTrial; k++ {
				sum += float64(lowerbound.ProbeFirstInterClique(ports, 4, rng))
			}
			return Metrics{
				"probe_mean": sum / probesPerTrial,
				"ports":      float64(ports),
				"eps":        lb.Epsilon,
			}, nil
		},
		Render: renderE9,
	}
}

func renderE9(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Lemma 18: messages before the first inter-clique edge (port probing)",
		Columns: []string{"alpha", "clique ports P", "mean probe msgs", "(P+1)/5", "mean * alpha", "paper bound n^{2eps}/8 * alpha"},
	}
	for _, pd := range data {
		ports := pd.First("ports")
		mean := pd.Mean("probe_mean")
		expected := (ports + 1) / 5
		paperRef := math.Pow(float64(pd.Point.N), 2*pd.First("eps")) / 8 * pd.Point.Alpha
		t.AddRow(g3(pd.Point.Alpha), d(int(ports)), f1(mean), f1(expected),
			f3(mean*pd.Point.Alpha), f3(paperRef))
	}
	t.AddNote("mean * alpha flat across the sweep reproduces the Theta(1/alpha) = Theta(n^{2 eps}) shape of Lemma 18 (the constant differs from the paper's 1/8 because sampling here is without replacement and P counts s(s-1) ports).")
	return t, nil
}

// e10Spec reproduces the Lemma 19-25 chain: under a message budget of
// M * n^{2 eps}, the clique communication graph stays sparse (O(M) edges),
// components stay disjoint (Disj), and the election ends with zero or
// multiple leaders.
func e10Spec() Spec {
	const alpha = 1.0 / 196
	return Spec{
		ID:    "E10",
		Name:  "budgeted-election",
		Title: "Theorem 15 / Lemmas 19-25: budgeted election on G(n, alpha): CG sparsity, Disj, and failure",
		Claim: "Theorem 15 via Lemmas 19-25 (budgeted elections fail)",
		Preamble: "Theorem 15's argument: an algorithm restricted to o(n/sqrt(phi)) messages leaves the clique-communication graph so sparse that disjoint cliques never hear from each other (the Disj event), and elections fail. " +
			"The full algorithm runs under hard message budgets scaled in units of 1/alpha; expect CG sparsity and the zero-leader rate to rise as the budget falls, exactly the failure mode the lower bound predicts.",
		FullTrials:  3,
		QuickTrials: 2,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, mult := range []int{1, 8, 32, 128} {
				out = append(out, Point{Key: fmt.Sprintf("M-%d", mult), Mult: mult,
					Alpha: alpha, N: cfg.lbSize()})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			lb, err := graph.NewLowerBound(pt.N, pt.Alpha, rand.New(rand.NewSource(sim.DeriveSeed(seed, 0xA))))
			if err != nil {
				return nil, err
			}
			tr := lowerbound.NewCGTracker(lb)
			c := core.DefaultConfig()
			c.MaxWalkLen = 64 // the budget bites long before longer walks matter
			budget := int64(pt.Mult) * int64(1/pt.Alpha)
			res, err := core.Run(lb.Graph, c, core.RunOptions{
				Seed: sim.DeriveSeed(seed, 0xB), Budget: budget, Observer: tr, LeanMetrics: true,
			})
			if err != nil {
				return nil, err
			}
			return Metrics{
				"budget":   float64(budget),
				"cg_edges": float64(tr.CGEdges()),
				"disj":     b2f(tr.DisjHolds()),
				"zero":     b2f(len(res.Leaders) == 0),
				"one":      b2f(len(res.Leaders) == 1),
				"multi":    b2f(len(res.Leaders) > 1),
			}, nil
		},
		Render: renderE10,
	}
}

func renderE10(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Theorem 15 / Lemmas 19-25: budgeted election on G(n, alpha): CG sparsity, Disj, and failure",
		Columns: []string{"budget (x 1/alpha)", "messages allowed", "mean CG edges", "CG edges / M",
			"Disj held", "zero leaders", "one leader", "multi"},
	}
	for _, pd := range data {
		meanCG := pd.Mean("cg_edges")
		t.AddRow(d(pd.Point.Mult), d64(int64(pd.First("budget"))), f1(meanCG),
			f3(meanCG/float64(pd.Point.Mult)),
			fmt.Sprintf("%d/%d", pd.Count("disj"), len(pd.Trials)),
			d(pd.Count("zero")), d(pd.Count("one")), d(pd.Count("multi")))
	}
	t.AddNote("Lemma 19: CG edges grow at most linearly in the budget multiplier M (the 'CG edges / M' column must not grow; it falls). Lemma 20 assumes M = o(sqrt(N)) (sqrt(N) ~ 8.5 at this size): Disj holds in the small-M rows and degrades once M crosses that threshold, exactly matching the hypothesis. Lemmas 24/25: with a budget below the Theorem 15 threshold the run ends with zero (or multiple) leaders — never a clean single election.")
	return t, nil
}

// e11Spec reproduces Corollaries 26/27: broadcast and spanning-tree
// construction need Omega(n/sqrt(phi)) messages on G(n, alpha).
func e11Spec() Spec {
	return Spec{
		ID:    "E11",
		Name:  "broadcast-spanning-tree",
		Title: "Corollaries 26/27: broadcast and spanning tree on G(n, alpha) cost Theta(n/sqrt(phi))",
		Claim: "Corollaries 26/27 (broadcast and spanning tree lower bounds)",
		Preamble: "The lower bound radiates outward: Corollaries 26/27 transfer the Omega(n/sqrt(phi)) message bound to broadcast and spanning-tree construction. " +
			"BFS flooding and push-pull gossip run on G(n, alpha); their message counts divided by n/sqrt(alpha) should stay bounded below by a constant as alpha falls.",
		FullTrials:  1,
		QuickTrials: 1,
		Points:      lbPoints,
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			lb, err := graph.NewLowerBound(pt.N, pt.Alpha, rand.New(rand.NewSource(sim.DeriveSeed(seed, 0xA))))
			if err != nil {
				return nil, err
			}
			tree, err := broadcast.BFSTree(lb.Graph, 0, sim.DeriveSeed(seed, 0xB))
			if err != nil {
				return nil, err
			}
			if !tree.Complete {
				return nil, fmt.Errorf("experiments: BFS tree incomplete on lower-bound graph")
			}
			// Push-pull through the Theta(alpha) bottleneck: horizon scaled
			// by log(n)/phi with the clique-cut conductance as phi.
			phi := 4.0 / float64(lb.CliqueSize*(lb.CliqueSize-1))
			horizon := int(6 * math.Log(float64(lb.N())) / phi)
			pp, err := broadcast.PushPull(lb.Graph, 0, 99, sim.DeriveSeed(seed, 0xC), horizon, false)
			if err != nil {
				return nil, err
			}
			ppRounds := pp.CompletionRound
			if ppRounds < 0 {
				ppRounds = horizon
			}
			return Metrics{
				"n":           float64(lb.N()),
				"m":           float64(lb.M()),
				"tree_msgs":   float64(tree.Metrics.Messages),
				"pp_msgs":     float64(pp.Metrics.Messages),
				"pp_rounds":   float64(ppRounds),
				"pp_informed": float64(pp.Informed),
			}, nil
		},
		Render: renderE11,
	}
}

func renderE11(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Corollaries 26/27: broadcast and spanning tree on G(n, alpha) cost Theta(n/sqrt(phi))",
		Columns: []string{"alpha", "n", "m", "n/sqrt(alpha)", "bfs-tree msgs", "bfs/ref",
			"push-pull msgs", "pp rounds", "pp covered"},
	}
	for _, pd := range data {
		n := pd.First("n")
		ref := n / math.Sqrt(pd.Point.Alpha)
		t.AddRow(g3(pd.Point.Alpha), d(int(n)), d(int(pd.First("m"))), f1(ref),
			d64(int64(pd.First("tree_msgs"))), f3(pd.First("tree_msgs")/ref),
			d64(int64(pd.First("pp_msgs"))), d(int(pd.First("pp_rounds"))),
			fmt.Sprintf("%d/%d", int(pd.First("pp_informed")), int(n)))
	}
	t.AddNote("On G(n, alpha), m = Theta(n * n^{eps}) = Theta(n/sqrt(alpha)), so flooding-based algorithms land exactly on the corollaries' Omega(n/sqrt(phi)) line: 'bfs/ref' is the flat shape. Push-pull must pay the conductance bottleneck in rounds (and therefore messages).")
	return t, nil
}

// e12Spec reproduces Theorem 28 / Section 5: without (correct) knowledge
// of n, the two halves of a dumbbell are indistinguishable from standalone
// graphs and elect independently; and solving bridge crossing costs
// Omega(m) messages.
func e12Spec() Spec {
	const half = 24
	return Spec{
		ID:    "E12",
		Name:  "dumbbell-knowledge-of-n",
		Title: "Theorem 28: the knowledge of n is critical (dumbbell graphs)",
		Claim: "Theorem 28 / Observation 31 (knowledge of n)",
		Preamble: "Section 5's impossibility: without (approximate) knowledge of n, no sublinear election can be correct. The construction joins two expander halves by two bridges and lies to every node that n equals one half's size; " +
			"expect both halves to elect their own leader (two leaders network-wide) while the honest-n control elects exactly one — the bridges simply carry too few messages to reveal the other half in time.",
		FullTrials:  3,
		QuickTrials: 2,
		Points: func(cfg SuiteConfig) []Point {
			if cfg.MaxN > 0 && cfg.MaxN < 2*half {
				return nil
			}
			return []Point{
				{Key: "wrong-n", Label: "believed n = half", N: 2 * half},
				{Key: "true-n", Label: "true n known", N: 2 * half},
			}
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			wrongN := pt.Key == "wrong-n"
			db, err := graph.NewDumbbellCliques(half, rand.New(rand.NewSource(sim.DeriveSeed(seed, 0xA))))
			if err != nil {
				return nil, err
			}
			c := core.DefaultConfig()
			if wrongN {
				// Nodes believe n = half, contenders kept off the bridge
				// endpoints (the indistinguishability regime).
				c.AssumedN = db.Half
				c.DisableDistinctness = true
				bridge := map[int]bool{
					db.Bridges[0].U: true, db.Bridges[0].V: true,
					db.Bridges[1].U: true, db.Bridges[1].V: true,
				}
				var conts []int
				for v := 0; v < db.N(); v++ {
					if !bridge[v] {
						conts = append(conts, v)
					}
				}
				c.ForcedContenders = conts
			}
			tr := lowerbound.NewBridgeTracker(db)
			res, err := core.Run(db.Graph, c, core.RunOptions{
				Seed: sim.DeriveSeed(seed, 0xB), Observer: tr, LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			sides := map[int]bool{}
			for _, l := range res.Leaders {
				sides[db.SideOf[l]] = true
			}
			before := float64(tr.TotalMessages)
			if tr.FirstCrossRound >= 0 {
				before = float64(tr.MsgsBeforeCross)
			}
			return Metrics{
				"two":       b2f(len(res.Leaders) == 2 && len(sides) == 2),
				"one":       b2f(len(res.Leaders) == 1),
				"zero":      b2f(len(res.Leaders) == 0),
				"crossings": float64(tr.Crossings),
				"before":    before,
				"m":         float64(db.M()),
			}, nil
		},
		Render: renderE12,
	}
}

func renderE12(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Theorem 28: the knowledge of n is critical (dumbbell graphs)",
		Columns: []string{"setting", "trials", "two leaders (one/side)", "one leader", "zero",
			"mean bridge crossings", "mean msgs before first cross", "m"},
	}
	for _, pd := range data {
		t.AddRow(pd.Point.Label, d(len(pd.Trials)), d(pd.Count("two")), d(pd.Count("one")),
			d(pd.Count("zero")), f1(pd.Mean("crossings")), f1(pd.Mean("before")),
			d(int(pd.First("m"))))
	}
	t.AddNote("With the wrong n, both halves elect before any message crosses a bridge (two leaders, zero crossings) — exactly Observation 31's indistinguishability; 'msgs before first cross' then counts a whole election's traffic with no crossing at all. With the true n the algorithm is never fooled into two leaders, but the dumbbell is not well-connected (tmix exceeds the walk cap), so runs may end with zero leaders, and the messages spent before the first bridge crossing exceed m — the Theorem 28 Omega(m) bridge-crossing regime.")
	return t, nil
}
