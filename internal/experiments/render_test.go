package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRenderGolden locks the Markdown renderer's output byte-for-byte:
// header, tables, notes, and ASCII plots for a cheap deterministic
// configuration. Regenerate with UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden.
func TestRenderGolden(t *testing.T) {
	cfg := testCfg()
	ids := []string{"E3", "E9"}
	res, err := (&Harness{Config: cfg, Workers: 4}).Run(ids)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSuite(&buf, cfg, ids, res, "golden"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "render_golden.md")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("rendered output drifted from %s.\nGot:\n%s\nWant:\n%s\n(re-run with UPDATE_GOLDEN=1 if the change is intended)",
			golden, buf.String(), want)
	}
}
