package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line of an ASCII trend plot.
type Series struct {
	Name string
	Mark byte
	Xs   []float64
	Ys   []float64
}

// plotWidth/plotHeight are the character dimensions of the plot grid.
const (
	plotWidth  = 56
	plotHeight = 12
)

// ASCIIPlot renders series as a fixed-size character plot. logX/logY
// select logarithmic axes; points that cannot be placed (non-positive on a
// log axis, NaN) are skipped. The output is deterministic.
func ASCIIPlot(title, xLabel, yLabel string, logX, logY bool, series []Series) string {
	type pt struct {
		x, y float64
		mark byte
	}
	tx := func(v float64) (float64, bool) {
		if math.IsNaN(v) {
			return 0, false
		}
		if logX {
			if v <= 0 {
				return 0, false
			}
			return math.Log(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if math.IsNaN(v) {
			return 0, false
		}
		if logY {
			if v <= 0 {
				return 0, false
			}
			return math.Log(v), true
		}
		return v, true
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var rawMinX, rawMaxX, rawMinY, rawMaxY float64
	for _, s := range series {
		for i := range s.Xs {
			x, okx := tx(s.Xs[i])
			y, oky := ty(s.Ys[i])
			if !okx || !oky {
				continue
			}
			if x < minX {
				minX, rawMinX = x, s.Xs[i]
			}
			if x > maxX {
				maxX, rawMaxX = x, s.Xs[i]
			}
			if y < minY {
				minY, rawMinY = y, s.Ys[i]
			}
			if y > maxY {
				maxY, rawMaxY = y, s.Ys[i]
			}
			pts = append(pts, pt{x: x, y: y, mark: s.Mark})
		}
	}
	if len(pts) < 2 || minX == maxX {
		return ""
	}
	if minY == maxY {
		// Flat series still plot as a midline; relabel the axis with the
		// padded range so the edge labels match what the grid spans.
		minY, maxY = minY-1, maxY+1
		if logY {
			rawMinY, rawMaxY = math.Exp(minY), math.Exp(maxY)
		} else {
			rawMinY, rawMaxY = minY, maxY
		}
	}
	grid := make([][]byte, plotHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotWidth))
	}
	for _, p := range pts {
		c := int(math.Round((p.x - minX) / (maxX - minX) * float64(plotWidth-1)))
		r := int(math.Round((p.y - minY) / (maxY - minY) * float64(plotHeight-1)))
		grid[plotHeight-1-r][c] = p.mark
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	yHi, yLo := fmtAxis(rawMaxY), fmtAxis(rawMinY)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r := 0; r < plotHeight; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yHi, labelW)
		case plotHeight - 1:
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, strings.TrimRight(string(grid[r]), " "))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", plotWidth))
	fmt.Fprintf(&sb, "%s  %s%s%s\n", strings.Repeat(" ", labelW),
		fmtAxis(rawMinX),
		strings.Repeat(" ", max(1, plotWidth-len(fmtAxis(rawMinX))-len(fmtAxis(rawMaxX)))),
		fmtAxis(rawMaxX))
	axes := "x: " + xLabel + ", y: " + yLabel
	if logX && logY {
		axes += " (log-log)"
	} else if logX {
		axes += " (log x)"
	} else if logY {
		axes += " (log y)"
	}
	fmt.Fprintf(&sb, "%s\n", axes)
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Mark, s.Name))
	}
	fmt.Fprintf(&sb, "%s\n", strings.Join(legend, "  "))
	return sb.String()
}

func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.2g", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// seriesMarks assigns plot marks in a stable order.
var seriesMarks = []byte{'o', 'x', '+', '*', '#', '@'}

// familySeries builds one plot series per family from point data, using a
// per-point y extractor.
func familySeries(data []PointData, y func(PointData) float64) []Series {
	var order []string
	byFam := make(map[string]*Series)
	for _, pd := range data {
		fam := pd.Point.Family
		if fam == "" {
			fam = "all"
		}
		s, ok := byFam[fam]
		if !ok {
			s = &Series{Name: fam}
			byFam[fam] = s
			order = append(order, fam)
		}
		v := y(pd)
		if math.IsNaN(v) {
			continue
		}
		s.Xs = append(s.Xs, float64(pd.Point.N))
		s.Ys = append(s.Ys, v)
	}
	out := make([]Series, 0, len(order))
	for i, fam := range order {
		s := byFam[fam]
		s.Mark = seriesMarks[i%len(seriesMarks)]
		out = append(out, *s)
	}
	return out
}

// RenderSuite renders the selected experiments' tables (plus a provenance
// header pinning the suite seed, regime, and the given git revision) from
// raw results into w. The output depends only on the configuration, the
// results, and the revision string — never on worker count or wall-clock.
func RenderSuite(w io.Writer, cfg SuiteConfig, ids []string, res *Results, revision string) error {
	specs, err := Resolve(ids)
	if err != nil {
		return err
	}
	regime := "full"
	if cfg.Quick {
		regime = "quick"
	}
	rev := revision
	if rev == "" {
		rev = "unknown"
	}
	fmt.Fprintf(w, "# EXPERIMENTS — measured reproduction of \"Leader Election in Well-Connected Graphs\" (PODC 2018)\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/benchsuite` at revision `%s` (regime: %s, seed: %d", rev, regime, cfg.Seed)
	if cfg.Trials > 0 {
		fmt.Fprintf(w, ", trials override: %d", cfg.Trials)
	}
	if cfg.MaxN > 0 {
		fmt.Fprintf(w, ", max n: %d", cfg.MaxN)
	}
	fmt.Fprintf(w, "). Each table corresponds to one experiment of DESIGN.md section 3; absolute numbers are implementation-specific, the *shapes* (flat ratios, fitted exponents, orderings) are the reproduction targets. Regenerate with `go run ./cmd/benchsuite -render EXPERIMENTS.md`.\n\n")
	for _, s := range specs {
		data, err := DataFor(s, cfg, res)
		if err != nil {
			return err
		}
		tab, err := s.Render(cfg, data)
		if err != nil {
			return fmt.Errorf("experiments: render %s: %w", s.ID, err)
		}
		tab.Preamble = s.Preamble
		if _, err := io.WriteString(w, tab.Markdown()); err != nil {
			return err
		}
	}
	return nil
}
