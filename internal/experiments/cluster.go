package experiments

// E19: the wire-level cluster runtime (internal/cluster). The other
// experiments measure the paper's quantities in simulator counters; E19
// runs the same elections across a real 3-shard TCP cluster on loopback
// and measures what the protocol actually puts on the wire — bytes,
// envelopes, barrier iterations — plus wall-clock election latency, per
// backend. Every trial also re-checks the keystone invariant live: the
// cluster must elect the identical leader the in-process sim elects.

import (
	"fmt"
	"time"

	"wcle/internal/algo"
	"wcle/internal/cluster"
	"wcle/internal/graph"
	"wcle/internal/serve"
	"wcle/internal/sim"
)

// e19Shards is the cluster size of the experiment: one coordinator plus
// two workers, the smallest cluster where worker-to-worker edges exist.
const e19Shards = 3

// e19Spec measures the three backends over the cluster transport.
func e19Spec() Spec {
	return Spec{
		ID:    "E19",
		Name:  "cluster-wire",
		Title: "Wire-level cluster runtime: bytes on the wire and election latency per backend",
		Claim: "The CONGEST delivery plane ports to real TCP: identical leaders, message complexity measurable as bytes and packets",
		Preamble: "Every election here runs twice: once on the in-process sim and once across a 3-shard TCP cluster on loopback " +
			"(`internal/cluster`: one process-shaped shard per contiguous node slice, cross-shard edges as length-prefixed binary envelopes, " +
			"a coordinator-led round barrier preserving synchronous-round semantics). The cluster must elect the identical leader — the wire " +
			"is just another delivery plane — and the paper's message-complexity separation (E17) becomes measurable as actual bytes: " +
			"FloodMax's Omega(m) floods dominate the wire, KPPRT's sublinear committees barely touch it. Latency is wall-clock on loopback, " +
			"so treat it as indicative; the byte and envelope counts are exact and deterministic.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, n := range e17Sizes(cfg) {
				out = append(out, Point{Key: fmt.Sprintf("clique-%d", n), Family: "clique", N: n})
			}
			return out
		},
		Trial:  e19Trial,
		Render: renderE19,
	}
}

// e19Trial runs one election per backend, in process and on the cluster,
// and reports the wire accounting.
func e19Trial(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
	local, err := cluster.StartLocal(e19Shards)
	if err != nil {
		return nil, err
	}
	defer local.Close()
	gs := serve.GraphSpec{Family: pt.Family, N: pt.N, Seed: seed}
	g, err := gs.Build()
	if err != nil {
		return nil, err
	}
	m := Metrics{"m": float64(g.M())}
	for i, b := range e17Backends {
		runSeed := sim.DeriveSeed(seed, uint64(0xC1+i))

		counts := &sendCounter{perNode: make([]int64, g.N())}
		localStart := time.Now()
		ref, err := runE19InProcess(g, b.name, runSeed, counts)
		if err != nil {
			return nil, fmt.Errorf("%s in process: %w", b.name, err)
		}
		localMs := time.Since(localStart).Seconds() * 1e3

		wireStart := time.Now()
		res, err := local.Elect(cluster.JobSpec{Graph: gs, Algorithm: b.name, Seed: runSeed})
		if err != nil {
			return nil, fmt.Errorf("%s on the cluster: %w", b.name, err)
		}
		wireMs := time.Since(wireStart).Seconds() * 1e3

		// The keystone invariant, live on every measured point: identical
		// leaders AND identical per-node message counts.
		if fmt.Sprint(res.Outcome.Leaders) != fmt.Sprint(ref.Leaders) ||
			res.Outcome.Metrics.Messages != ref.Metrics.Messages {
			return nil, fmt.Errorf("%s diverged between planes: cluster %v/%d msgs, sim %v/%d msgs",
				b.name, res.Outcome.Leaders, res.Outcome.Metrics.Messages, ref.Leaders, ref.Metrics.Messages)
		}
		for v := range counts.perNode {
			if v >= len(res.PerNodeMessages) || res.PerNodeMessages[v] != counts.perNode[v] {
				return nil, fmt.Errorf("%s diverged between planes at node %d: cluster counted %v, sim %d sends",
					b.name, v, res.PerNodeMessages, counts.perNode[v])
			}
		}

		m[b.prefix+"_msgs"] = float64(res.Outcome.Metrics.Messages)
		m[b.prefix+"_wire_bytes"] = float64(res.Wire.Bytes)
		m[b.prefix+"_wire_envelopes"] = float64(res.Wire.Envelopes)
		m[b.prefix+"_wire_frames"] = float64(res.Wire.Frames)
		m[b.prefix+"_barriers"] = float64(res.Wire.Barriers)
		m[b.prefix+"_ms"] = wireMs
		m[b.prefix+"_local_ms"] = localMs
		m[b.prefix+"_success"] = b2f(res.Outcome.Success)
	}
	return m, nil
}

// sendCounter tallies per-node sends of the in-process reference leg.
type sendCounter struct {
	perNode []int64
}

func (c *sendCounter) OnSend(round, from, fromPort, to, toPort int, m sim.Message) {
	c.perNode[from]++
}

// runE19InProcess is the reference leg of a trial.
func runE19InProcess(g *graph.Graph, backend string, seed int64, counts *sendCounter) (*algo.Outcome, error) {
	a, err := algo.New(backend, algo.Config{})
	if err != nil {
		return nil, err
	}
	return a.Run(g, algo.Options{Seed: seed, Observer: counts})
}

func renderE19(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Wire-level cluster runtime: bytes on the wire and election latency per backend",
		Columns: []string{"n", "backend", "msgs", "wire envelopes", "wire KB", "barriers",
			"cluster ms", "in-proc ms", "elected"},
	}
	for _, pd := range data {
		for _, b := range e17Backends {
			t.AddRow(d(pd.Point.N), b.name,
				d64(int64(pd.Median(b.prefix+"_msgs"))),
				d64(int64(pd.Median(b.prefix+"_wire_envelopes"))),
				f1(pd.Median(b.prefix+"_wire_bytes")/1024),
				d64(int64(pd.Median(b.prefix+"_barriers"))),
				f1(pd.Median(b.prefix+"_ms")),
				f1(pd.Median(b.prefix+"_local_ms")),
				fmt.Sprintf("%d/%d", pd.Count(b.prefix+"_success"), len(pd.Trials)))
		}
	}
	for _, b := range e17Backends {
		b := b
		slope, err := fitExponent(data, "clique", func(pd PointData) float64 {
			return pd.Median(b.prefix + "_wire_bytes")
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: fitted wire bytes ~ n^%.2f.", b.name, slope)
	}
	t.AddNote("Every row's cluster election elected the same leader as the in-process sim with the same seed (a trial fails otherwise) — " +
		"the keystone determinism contract of the cluster runtime, also enforced by TestClusterMatchesInProcessSim. " +
		"Barriers count global event rounds: the coordinator agrees on min-next-event across shards, so idle rounds cost no wire traffic " +
		"(gilbertrs18's schedule spans tens of thousands of simulated rounds but only a few hundred barriers). " +
		"The cluster-vs-in-process latency gap is the price of synchronous rounds over loopback TCP at 3 shards on one machine; " +
		"bytes and envelopes are the machine-independent measurements.")
	t.Plot = ASCIIPlot("median wire bytes vs n (per backend)", "n", "bytes", true, true,
		backendSeries(data, "_wire_bytes"))
	return t, nil
}
