package experiments

// E19: the wire-level cluster runtime (internal/cluster). The other
// experiments measure the paper's quantities in simulator counters; E19
// runs the same elections across a real 3-shard TCP cluster on loopback
// and measures what the protocol actually puts on the wire — bytes,
// envelopes, barrier iterations — plus wall-clock election latency, per
// backend. Every trial also re-checks the keystone invariant live: the
// cluster must elect the identical leader the in-process sim elects.
//
// E20: supervised failover. Leader leases over the same transport: kill
// worker shards out from under a leased election and measure how long
// the supervisor takes to detect the deaths, quiesce the survivors, and
// grant a new single-leader lease, per backend and per crash count.
//
// E21: the barrier ablation. The same election under the legacy
// coordinator star (frameReady/frameAdvance per round) and under
// piggybacked round advancement, counting the control frames the
// piggyback removed and asserting outcome identity between the modes.

import (
	"fmt"
	"time"

	"wcle/internal/algo"
	"wcle/internal/cluster"
	"wcle/internal/graph"
	"wcle/internal/serve"
	"wcle/internal/sim"
)

// e19Shards is the cluster size of the experiment: one coordinator plus
// two workers, the smallest cluster where worker-to-worker edges exist.
const e19Shards = 3

// e19Spec measures the three backends over the cluster transport.
func e19Spec() Spec {
	return Spec{
		ID:    "E19",
		Name:  "cluster-wire",
		Title: "Wire-level cluster runtime: bytes on the wire and election latency per backend",
		Claim: "The CONGEST delivery plane ports to real TCP: identical leaders, message complexity measurable as bytes and packets",
		Preamble: "Every election here runs twice: once on the in-process sim and once across a 3-shard TCP cluster on loopback " +
			"(`internal/cluster`: one process-shaped shard per contiguous node slice, cross-shard edges as length-prefixed binary envelopes, " +
			"and piggybacked round advancement — each shard's next-event contribution rides its final data chunk, preserving synchronous-round " +
			"semantics without a coordinator round-trip). The cluster must elect the identical leader — the wire " +
			"is just another delivery plane — and the paper's message-complexity separation (E17) becomes measurable as actual bytes: " +
			"FloodMax's Omega(m) floods dominate the wire, KPPRT's sublinear committees barely touch it. Latency is wall-clock on loopback, " +
			"so treat it as indicative; the byte and envelope counts are exact and deterministic.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, n := range e17Sizes(cfg) {
				out = append(out, Point{Key: fmt.Sprintf("clique-%d", n), Family: "clique", N: n})
			}
			return out
		},
		Trial:  e19Trial,
		Render: renderE19,
	}
}

// e19Trial runs one election per backend, in process and on the cluster,
// and reports the wire accounting.
func e19Trial(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
	local, err := cluster.StartLocal(e19Shards)
	if err != nil {
		return nil, err
	}
	defer local.Close()
	gs := serve.GraphSpec{Family: pt.Family, N: pt.N, Seed: seed}
	g, err := gs.Build()
	if err != nil {
		return nil, err
	}
	m := Metrics{"m": float64(g.M())}
	for i, b := range e17Backends {
		runSeed := sim.DeriveSeed(seed, uint64(0xC1+i))

		counts := &sendCounter{perNode: make([]int64, g.N())}
		localStart := time.Now()
		ref, err := runE19InProcess(g, b.name, runSeed, counts)
		if err != nil {
			return nil, fmt.Errorf("%s in process: %w", b.name, err)
		}
		localMs := time.Since(localStart).Seconds() * 1e3

		wireStart := time.Now()
		res, err := local.Elect(cluster.JobSpec{Graph: gs, Algorithm: b.name, Seed: runSeed})
		if err != nil {
			return nil, fmt.Errorf("%s on the cluster: %w", b.name, err)
		}
		wireMs := time.Since(wireStart).Seconds() * 1e3

		// The keystone invariant, live on every measured point: identical
		// leaders AND identical per-node message counts.
		if fmt.Sprint(res.Outcome.Leaders) != fmt.Sprint(ref.Leaders) ||
			res.Outcome.Metrics.Messages != ref.Metrics.Messages {
			return nil, fmt.Errorf("%s diverged between planes: cluster %v/%d msgs, sim %v/%d msgs",
				b.name, res.Outcome.Leaders, res.Outcome.Metrics.Messages, ref.Leaders, ref.Metrics.Messages)
		}
		for v := range counts.perNode {
			if v >= len(res.PerNodeMessages) || res.PerNodeMessages[v] != counts.perNode[v] {
				return nil, fmt.Errorf("%s diverged between planes at node %d: cluster counted %v, sim %d sends",
					b.name, v, res.PerNodeMessages, counts.perNode[v])
			}
		}

		m[b.prefix+"_msgs"] = float64(res.Outcome.Metrics.Messages)
		m[b.prefix+"_wire_bytes"] = float64(res.Wire.Bytes)
		m[b.prefix+"_wire_envelopes"] = float64(res.Wire.Envelopes)
		m[b.prefix+"_wire_frames"] = float64(res.Wire.Frames)
		m[b.prefix+"_barriers"] = float64(res.Wire.Barriers)
		m[b.prefix+"_ms"] = wireMs
		m[b.prefix+"_local_ms"] = localMs
		m[b.prefix+"_success"] = b2f(res.Outcome.Success)
	}
	return m, nil
}

// sendCounter tallies per-node sends of the in-process reference leg.
type sendCounter struct {
	perNode []int64
}

func (c *sendCounter) OnSend(round, from, fromPort, to, toPort int, m sim.Message) {
	c.perNode[from]++
}

// runE19InProcess is the reference leg of a trial.
func runE19InProcess(g *graph.Graph, backend string, seed int64, counts *sendCounter) (*algo.Outcome, error) {
	a, err := algo.New(backend, algo.Config{})
	if err != nil {
		return nil, err
	}
	return a.Run(g, algo.Options{Seed: seed, Observer: counts})
}

func renderE19(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Wire-level cluster runtime: bytes on the wire and election latency per backend",
		Columns: []string{"n", "backend", "msgs", "wire envelopes", "wire KB", "barriers",
			"cluster ms", "in-proc ms", "elected"},
	}
	for _, pd := range data {
		for _, b := range e17Backends {
			t.AddRow(d(pd.Point.N), b.name,
				d64(int64(pd.Median(b.prefix+"_msgs"))),
				d64(int64(pd.Median(b.prefix+"_wire_envelopes"))),
				f1(pd.Median(b.prefix+"_wire_bytes")/1024),
				d64(int64(pd.Median(b.prefix+"_barriers"))),
				f1(pd.Median(b.prefix+"_ms")),
				f1(pd.Median(b.prefix+"_local_ms")),
				fmt.Sprintf("%d/%d", pd.Count(b.prefix+"_success"), len(pd.Trials)))
		}
	}
	for _, b := range e17Backends {
		b := b
		slope, err := fitExponent(data, "clique", func(pd PointData) float64 {
			return pd.Median(b.prefix + "_wire_bytes")
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: fitted wire bytes ~ n^%.2f.", b.name, slope)
	}
	t.AddNote("Every row's cluster election elected the same leader as the in-process sim with the same seed (a trial fails otherwise) — " +
		"the keystone determinism contract of the cluster runtime, also enforced by TestClusterMatchesInProcessSim. " +
		"Barriers count global event rounds: each shard piggybacks its next-event contribution on its final data chunk and takes the " +
		"minimum locally (E21 measures the saving vs the old coordinator star), so idle rounds cost no wire traffic " +
		"(gilbertrs18's schedule spans tens of thousands of simulated rounds but only a few hundred barriers). " +
		"The cluster-vs-in-process latency gap is the price of synchronous rounds over loopback TCP at 3 shards on one machine; " +
		"bytes and envelopes are the machine-independent measurements.")
	t.Plot = ASCIIPlot("median wire bytes vs n (per backend)", "n", "bytes", true, true,
		backendSeries(data, "_wire_bytes"))
	return t, nil
}

// e21N is E21's graph size: large enough that gilbertrs18's long idle
// schedule produces hundreds of barriers, so the per-barrier control
// traffic difference is well above measurement noise.
const e21N = 64

// e21Spec measures what killing the coordinator barrier bought: the same
// election under the legacy frameReady/frameAdvance star and under
// piggybacked advancement, per backend and per cluster size.
func e21Spec() Spec {
	return Spec{
		ID:    "E21",
		Name:  "cluster-barrier",
		Title: "Piggybacked round advancement vs the coordinator barrier star",
		Claim: "Folding the barrier into the final data chunk removes all 2(k-1) control frames per global round without changing a single election outcome",
		Preamble: "Both sessions run the identical election (same graph, same seed): one negotiated down to the legacy barrier — after every " +
			"round's flush each worker sends frameReady to the coordinator and waits for frameAdvance, two star round-trips of latency and " +
			"2(k-1) control frames per global barrier — and one with piggybacked advancement, where each shard's next-event contribution " +
			"rides its final data chunk and every shard takes the k-way minimum locally. A trial fails if the two sessions disagree on the " +
			"leader or if the piggybacked session sends any barrier control frame at all. Wall-clock on loopback understates the saving: " +
			"on a real network each removed round-trip is a full RTT per barrier.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			if cfg.MaxN > 0 && cfg.MaxN < e21N {
				return nil // the size is pinned; a cap below it drops the experiment
			}
			var out []Point
			for _, shards := range []int{2, 3, 4} {
				out = append(out, Point{Key: fmt.Sprintf("shards-%d", shards), Family: "clique", N: e21N, Mult: shards})
			}
			return out
		},
		Trial:  e21Trial,
		Render: renderE21,
	}
}

// e21Trial runs each backend once per barrier mode at the same seed.
func e21Trial(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
	shards := pt.Mult
	m := Metrics{}
	for i, b := range e17Backends {
		runSeed := sim.DeriveSeed(seed, uint64(0xB2+i))
		spec := cluster.JobSpec{Graph: serve.GraphSpec{Family: pt.Family, N: pt.N, Seed: seed}, Algorithm: b.name, Seed: runSeed}

		legacy, legacyMs, err := e21Elect(shards, cluster.LocalOptions{LegacyBarrier: true}, spec)
		if err != nil {
			return nil, fmt.Errorf("%s legacy: %w", b.name, err)
		}
		piggy, piggyMs, err := e21Elect(shards, cluster.LocalOptions{}, spec)
		if err != nil {
			return nil, fmt.Errorf("%s piggybacked: %w", b.name, err)
		}

		// The two modes are different wire encodings of the same round
		// schedule: any divergence is a barrier bug.
		if fmt.Sprint(legacy.Outcome.Leaders) != fmt.Sprint(piggy.Outcome.Leaders) ||
			legacy.Outcome.Metrics.Messages != piggy.Outcome.Metrics.Messages {
			return nil, fmt.Errorf("%s diverged between barrier modes: legacy %v/%d msgs, piggybacked %v/%d msgs",
				b.name, legacy.Outcome.Leaders, legacy.Outcome.Metrics.Messages,
				piggy.Outcome.Leaders, piggy.Outcome.Metrics.Messages)
		}
		if piggy.Wire.BarrierFrames != 0 {
			return nil, fmt.Errorf("%s piggybacked session sent %d barrier control frames", b.name, piggy.Wire.BarrierFrames)
		}

		// Merged Wire sums per-shard counters, so Barriers arrives
		// multiplied by the shard count; report global barriers.
		m[b.prefix+"_barriers"] = float64(legacy.Wire.Barriers / int64(shards))
		m[b.prefix+"_legacy_bf"] = float64(legacy.Wire.BarrierFrames)
		m[b.prefix+"_legacy_ms"] = legacyMs
		m[b.prefix+"_piggy_ms"] = piggyMs
	}
	return m, nil
}

// e21Elect runs one election on a fresh cluster in the given mode.
func e21Elect(shards int, opt cluster.LocalOptions, spec cluster.JobSpec) (*cluster.Result, float64, error) {
	local, err := cluster.StartLocalWith(shards, opt)
	if err != nil {
		return nil, 0, err
	}
	defer local.Close()
	start := time.Now()
	res, err := local.Elect(spec)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start).Seconds() * 1e3, nil
}

func renderE21(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E21",
		Title: "Piggybacked round advancement vs the coordinator barrier star",
		Columns: []string{"shards", "backend", "global barriers", "star ctrl frames", "piggy ctrl frames",
			"star ms", "piggy ms"},
	}
	for _, pd := range data {
		for _, b := range e17Backends {
			t.AddRow(d(pd.Point.Mult), b.name,
				d64(int64(pd.Median(b.prefix+"_barriers"))),
				d64(int64(pd.Median(b.prefix+"_legacy_bf"))),
				"0",
				f1(pd.Median(b.prefix+"_legacy_ms")),
				f1(pd.Median(b.prefix+"_piggy_ms")))
		}
	}
	t.AddNote("Star ctrl frames is exactly 2(k-1) per global barrier — each of the k-1 workers sends frameReady and receives " +
		"frameAdvance — and the piggybacked column is identically zero (a trial fails otherwise): round advancement now rides the " +
		"final data chunk each shard already sends every round. Outcomes are asserted identical between modes per trial.")
	t.AddNote("Loopback wall-clock differences are indicative only; the structural saving is two star phases (gather readies, " +
		"broadcast advance) collapsed into the data flush itself, i.e. one network round-trip per barrier on a real network.")
	return t, nil
}

// e20Shards is E20's cluster size: a coordinator plus three workers, so
// the crash count can sweep a third, two thirds, or all of the killable
// shards (the coordinator's own shard cannot die).
const e20Shards = 4

// e20N is the supervised graph size (both regimes). Crash counts shrink
// the survivor clique to N - crashes*N/4 nodes, and the smallest of
// those must stay inside GilbertRS18's reliable regime: with the default
// config the success probability is bimodal on cliques — essentially
// zero below n=16, near-certain from n=16 up — so the deepest crash
// count must leave at least 16 nodes standing.
const e20N = 64

// e20Spec measures supervised failover: re-election latency vs crash count.
func e20Spec() Spec {
	return Spec{
		ID:    "E20",
		Name:  "cluster-failover",
		Title: "Supervised failover: crash detection and re-election latency per backend",
		Claim: "Leader election composes into fault recovery: a crashed shard costs one detection plus one re-election over the survivors, and the re-election inherits each backend's complexity profile",
		Preamble: "A 4-shard cluster runs each backend under supervision (`internal/cluster`: the lease is broadcast after the election, workers " +
			"heartbeat, a dead shard's connections sever). The trial then kills 1, 2, or 3 of the worker shards — one at a time, waiting for the " +
			"new lease after each kill — and records the recovery wall time: crash detection, quiescing the survivors, and the re-election over " +
			"the induced survivor subgraph at the derived epoch seed. Every granted lease must carry exactly one leader (a failed election retries " +
			"at a derived seed a bounded number of times; running out is fatal and fails the trial). Wall-clock on loopback is indicative, not " +
			"asymptotic; what the table establishes is " +
			"that recovery is dominated by the re-election itself, so the backend separation of E17/E19 carries over to failover latency.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			if cfg.MaxN > 0 && cfg.MaxN < e20N {
				return nil // the size is pinned; a cap below it drops the experiment
			}
			var out []Point
			for crashes := 1; crashes < e20Shards; crashes++ {
				out = append(out, Point{Key: fmt.Sprintf("crashes-%d", crashes), Family: "clique", N: e20N, Mult: crashes})
			}
			return out
		},
		Trial:  e20Trial,
		Render: renderE20,
	}
}

// e20Trial supervises one election per backend and kills pt.Mult worker
// shards sequentially, measuring each recovery.
func e20Trial(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
	m := Metrics{}
	for i, b := range e17Backends {
		runSeed := sim.DeriveSeed(seed, uint64(0xE2+i))
		recoverMs, electMs, err := e20Failover(pt, b.name, runSeed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		m[b.prefix+"_elect_ms"] = electMs
		m[b.prefix+"_recover_ms"] = recoverMs
	}
	return m, nil
}

// e20Failover runs one supervised kill sequence and returns the mean
// recovery wall time across the crashes and the initial election wall.
func e20Failover(pt Point, backend string, seed int64) (recoverMs, electMs float64, err error) {
	local, err := cluster.StartLocal(e20Shards)
	if err != nil {
		return 0, 0, err
	}
	defer local.Close()
	spec := cluster.JobSpec{Graph: serve.GraphSpec{Family: pt.Family, N: pt.N, Seed: seed}, Algorithm: backend, Seed: seed}
	leases := make(chan cluster.Event, 64)
	sup, err := local.Coord.Supervise(cluster.SuperviseConfig{
		Spec: spec,
		OnEvent: func(ev cluster.Event) {
			if ev.Kind == cluster.EventLease {
				leases <- ev
			}
		},
	})
	if err != nil {
		return 0, 0, err
	}
	awaitLease := func() error {
		select {
		case <-leases:
			return nil
		case <-time.After(60 * time.Second):
			// A fatal supervision error (a failed election is one) ends
			// the supervision without a lease; report that, not the wait.
			sup.Stop()
			if _, serr := sup.Wait(); serr != nil {
				return serr
			}
			return fmt.Errorf("no lease within 60s")
		}
	}
	if err := awaitLease(); err != nil {
		sup.Stop()
		return 0, 0, fmt.Errorf("initial election: %w", err)
	}
	for victim := 1; victim <= pt.Mult; victim++ {
		if err := local.Kill(victim); err != nil {
			sup.Stop()
			return 0, 0, err
		}
		if err := awaitLease(); err != nil {
			sup.Stop()
			return 0, 0, fmt.Errorf("recovery from crash %d: %w", victim, err)
		}
	}
	sup.Stop()
	reigns, err := sup.Wait()
	if err != nil {
		return 0, 0, err
	}
	if len(reigns) != 1+pt.Mult {
		return 0, 0, fmt.Errorf("%d reigns after %d crashes, want %d", len(reigns), pt.Mult, 1+pt.Mult)
	}
	var sum float64
	for _, r := range reigns[1:] {
		sum += r.RecoverWall.Seconds() * 1e3
	}
	return sum / float64(pt.Mult), reigns[0].ElectWall.Seconds() * 1e3, nil
}

func renderE20(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "Supervised failover: crash detection and re-election latency per backend",
		Columns: []string{"crashed shards", "surviving nodes", "backend",
			"initial elect ms", "recover ms"},
	}
	for _, pd := range data {
		survivors := e20N - pd.Point.Mult*(e20N/e20Shards)
		for _, b := range e17Backends {
			t.AddRow(d(pd.Point.Mult), d(survivors), b.name,
				f1(pd.Median(b.prefix+"_elect_ms")),
				f1(pd.Median(b.prefix+"_recover_ms")))
		}
	}
	t.AddNote("Recover ms spans the whole failover: abrupt connection loss, death detection by the lease monitors, the epoch-marker " +
		"quiesce of every survivor, and the re-election over the induced survivor subgraph. Each recovery is one crash (kills are " +
		"sequential, each waiting for the new lease), so rows are directly comparable across crash counts.")
	t.AddNote("Determinism contract: every re-election equals an in-process election over the induced survivor subgraph at the derived " +
		"epoch seed — enforced live by TestSupervisionReelectsAfterCrash, not re-measured here; a lease with anything but exactly one " +
		"leader fails the trial.")
	return t, nil
}
