package experiments

// E22 exercises the protocol registry through the generic engine: every
// registered protocol — the four election backends and the dissemination
// substrates — runs through the same engine.Run call the cluster runtime
// and the conformance battery use, with per-node send accounting and an
// in-trial replay check of the determinism contract. The experiment
// harness itself stays protocol-agnostic: the spec only iterates
// engine.Names().

import (
	"reflect"

	"wcle/internal/engine"
	"wcle/internal/sim"
)

// e22Spec measures the cost portrait of the whole protocol registry under
// one engine entry point.
func e22Spec() Spec {
	return Spec{
		ID:    "E22",
		Name:  "protocol-registry",
		Title: "Protocol registry: every registered protocol through the generic engine (rr8)",
		Claim: "Engine determinism contract (DESIGN.md): same seed => identical outputs and per-node send counts for any registered protocol",
		Preamble: "Every registered protocol — the election backends and the dissemination substrates promoted from internal/broadcast — runs through the one generic engine.Run path here, with default configuration on a degree-8 random regular graph. " +
			"Each trial replays itself at the same seed and checks the determinism contract (identical output matrices and per-node send counts); the replay column must be identically 1. " +
			"The cost columns portray how differently shaped the protocols are under the same CONGEST accounting: flooding pays Theta(m) per round, gossip pays Theta(n), the walk-based election pays for its token walks.",
		FullTrials:  5,
		QuickTrials: 2,
		Points: func(cfg SuiteConfig) []Point {
			n := 128
			if cfg.Quick {
				n = 64
			}
			if cfg.MaxN > 0 && cfg.MaxN < n {
				n = cfg.MaxN
			}
			var out []Point
			for _, name := range engine.Names() {
				out = append(out, Point{Key: name, Label: name, Family: "rr8", N: n})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			p, err := engine.New(pt.Label, engine.Config{})
			if err != nil {
				return nil, err
			}
			opts := engine.Options{Seed: sim.DeriveSeed(seed, 0xB), CountSends: true, LeanMetrics: true}
			res, err := engine.Run(p, g, opts)
			if err != nil {
				return nil, err
			}
			replay, err := engine.Run(p, g, opts)
			if err != nil {
				return nil, err
			}
			var maxNode int64
			for _, c := range res.PerNodeMessages {
				if c > maxNode {
					maxNode = c
				}
			}
			ok := reflect.DeepEqual(res.Outputs, replay.Outputs) &&
				reflect.DeepEqual(res.PerNodeMessages, replay.PerNodeMessages) &&
				res.Rounds == replay.Rounds
			return Metrics{
				"rounds":    float64(res.Rounds),
				"msgs":      float64(res.Metrics.Messages),
				"bits":      float64(res.Metrics.Bits),
				"max_node":  float64(maxNode),
				"replay_ok": b2f(ok),
			}, nil
		},
		Render: renderE22,
	}
}

func renderE22(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E22",
		Title:   "Protocol registry: every registered protocol through the generic engine (rr8)",
		Columns: []string{"protocol", "n", "trials", "rounds", "messages", "bits", "max node msgs", "replays identical"},
	}
	for _, pd := range data {
		t.AddRow(pd.Point.Label, d(pd.Point.N), d(len(pd.Trials)),
			d(int(pd.Median("rounds"))), d64(int64(pd.Median("msgs"))),
			d64(int64(pd.Median("bits"))), d64(int64(pd.Median("max_node"))),
			d(pd.Count("replay_ok")))
	}
	t.AddNote("'replays identical' must equal 'trials' in every row: the engine's determinism contract — same (protocol, graph, seed) => identical outputs, rounds, and per-node send counts — is what the cluster conformance battery extends across TCP and fault planes.")
	t.AddNote("All rows use default configuration; elections run through the same generic path the cluster uses (the engine never learns they are elections).")
	return t, nil
}
