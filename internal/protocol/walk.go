package protocol

import (
	"cmp"
	"math/bits"
	"slices"

	"wcle/internal/sim"
)

// heldKey identifies a group of identical walk tokens resting at a node.
type heldKey struct {
	origin    ID
	phase     int
	remaining int
}

// Holder tracks the walk tokens currently resting at a node and advances
// them one lazy step per round: each token independently stays with
// probability 1/2 or moves to a uniformly random neighbor (the paper's lazy
// walk, Section 2). Token groups are processed in a deterministic order so
// that runs replay exactly.
type Holder struct {
	counts map[heldKey]int
	next   map[heldKey]int // non-nil only while Step is running
	spare  map[heldKey]int // last round's counts map, recycled
	keys   []heldKey       // scratch: sorted group keys
	bins   []int           // scratch: per-port distribution
}

// NewHolder returns an empty token holder.
func NewHolder() *Holder { return &Holder{counts: make(map[heldKey]int)} }

// Add deposits count tokens with the given remaining step budget. Tokens
// with remaining == 0 must be registered as proxies by the caller instead.
// Add is safe to call from within Step callbacks: such tokens join the
// next-round population (they already took their step this round).
func (h *Holder) Add(origin ID, phase, remaining, count int) {
	if count <= 0 || remaining <= 0 {
		return
	}
	k := heldKey{origin: origin, phase: phase, remaining: remaining}
	if h.next != nil {
		h.next[k] += count
		return
	}
	h.counts[k] += count
}

// Len returns the number of resting tokens.
func (h *Holder) Len() int {
	var n int
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Empty reports whether no tokens are resting here.
func (h *Holder) Empty() bool { return len(h.counts) == 0 }

// DropPhasesBefore discards tokens of the given origin from phases older
// than minPhase (stale walks of a contender that already moved on).
func (h *Holder) DropPhasesBefore(origin ID, minPhase int) {
	for k := range h.counts {
		if k.origin == origin && k.phase < minPhase {
			delete(h.counts, k)
		}
	}
}

// Step advances every resting token by one lazy step.
//   - move(port, origin, phase, remaining, count): tokens leaving on a port
//     with the decremented remaining budget (possibly 0: they complete at
//     the neighbor);
//   - land(origin, phase, count): tokens whose walk completes here (they
//     stayed on their final step).
//
// degree is the node's port count; rng drives the lazy coin flips.
func (h *Holder) Step(degree int, rng *sim.Rand,
	move func(port int, origin ID, phase, remaining, count int),
	land func(origin ID, phase, count int)) {

	if len(h.counts) == 0 {
		return
	}
	keys := h.keys[:0]
	for k := range h.counts {
		keys = append(keys, k)
	}
	h.keys = keys
	slices.SortFunc(keys, func(a, b heldKey) int {
		switch {
		case a.origin != b.origin:
			return cmp.Compare(a.origin, b.origin)
		case a.phase != b.phase:
			return cmp.Compare(a.phase, b.phase)
		default:
			return cmp.Compare(a.remaining, b.remaining)
		}
	})
	next := h.spare
	if next == nil {
		next = make(map[heldKey]int, len(h.counts))
	} else {
		clear(next)
		h.spare = nil
	}
	h.next = next
	defer func() { h.next = nil }()
	for _, k := range keys {
		c := h.counts[k]
		stay := BinomialHalf(rng, c)
		movers := c - stay
		rem := k.remaining - 1
		if stay > 0 {
			if rem == 0 {
				land(k.origin, k.phase, stay)
			} else {
				next[heldKey{origin: k.origin, phase: k.phase, remaining: rem}] += stay
			}
		}
		if movers > 0 && degree > 0 {
			perPort := h.distribute(rng, movers, degree)
			for port, cnt := range perPort {
				if cnt > 0 {
					move(port, k.origin, k.phase, rem, cnt)
				}
			}
		} else if movers > 0 {
			// Isolated node: movers have nowhere to go; they stay.
			if rem == 0 {
				land(k.origin, k.phase, movers)
			} else {
				next[heldKey{origin: k.origin, phase: k.phase, remaining: rem}] += movers
			}
		}
	}
	h.spare = h.counts
	h.counts = next
}

// distribute is DistributeUniform on a reused scratch buffer (identical
// random stream, no per-call allocation).
func (h *Holder) distribute(rng *sim.Rand, m, d int) []int {
	if cap(h.bins) < d {
		h.bins = make([]int, d)
	}
	bins := h.bins[:d]
	for i := range bins {
		bins[i] = 0
	}
	for i := 0; i < m; i++ {
		bins[rng.Intn(d)]++
	}
	return bins
}

// BinomialHalf draws Binomial(n, 1/2) exactly by popcounting random words.
func BinomialHalf(rng *sim.Rand, n int) int {
	var sum int
	for n >= 64 {
		sum += bits.OnesCount64(rng.Uint64())
		n -= 64
	}
	if n > 0 {
		mask := (uint64(1) << uint(n)) - 1
		sum += bits.OnesCount64(rng.Uint64() & mask)
	}
	return sum
}

// DistributeUniform places m items independently and uniformly into d bins
// and returns the per-bin counts.
func DistributeUniform(rng *sim.Rand, m, d int) []int {
	out := make([]int, d)
	for i := 0; i < m; i++ {
		out[rng.Intn(d)]++
	}
	return out
}
