package protocol

import "fmt"

// Message kinds, used for per-kind accounting in sim.Metrics.ByKind.
const (
	KindToken = "token" // random-walk tokens (batched with a count)
	KindUp    = "up"    // convergecast toward a contender (X1, X3, winner relay)
	KindDown  = "down"  // downcast toward proxies (X2, FINAL, winner flood)
)

// UpStage distinguishes the convergecast flows on a walk tree.
type UpStage uint8

const (
	// UpX1 carries exchange round 1 data: the distinctness delta, proxy
	// count delta, and I1 id fragments (Algorithm 2, round 1).
	UpX1 UpStage = iota + 1
	// UpX3 carries exchange round 3 data: I3 id fragments (round 3).
	UpX3
	// UpWinner relays a winner notification from a proxy toward a
	// contender (Algorithm 2, line 6).
	UpWinner
)

// DownOp distinguishes the downcast flows on a walk tree.
type DownOp uint8

const (
	// DownX2 carries I2 id fragments toward the proxies (round 2).
	DownX2 DownOp = iota + 1
	// DownFinal latches the contender's current proxies as final (our
	// realization of the paper's "current or final guess" proxy
	// definition; see DESIGN.md).
	DownFinal
	// DownWinner floods a winner notification to the proxies (line 5).
	DownWinner
)

// TokenMsg is a batch of random-walk tokens from one origin with the same
// number of remaining steps (the paper's "one token and the count of
// tokens"). Remaining counts the steps still to take after this hop.
type TokenMsg struct {
	Origin    ID
	Phase     int
	Remaining int
	Count     int
	Win       ID
	bits      int
}

// UpMsg travels toward the contender along the walk tree's designated
// parent edges: additive deltas plus an id-set fragment.
type UpMsg struct {
	Origin ID
	Phase  int
	Stage  UpStage
	IDs    []ID
	DDelta int // distinct-proxy count delta (X1 only)
	PDelta int // proxy count delta (X1 only)
	Win    ID
	bits   int
}

// DownMsg travels from the contender toward its proxies along all child
// edges of the walk tree.
type DownMsg struct {
	Origin ID
	Phase  int
	Op     DownOp
	IDs    []ID
	Win    ID
	bits   int
}

func (m *TokenMsg) Bits() int    { return m.bits }
func (m *TokenMsg) Kind() string { return KindToken }
func (m *UpMsg) Bits() int       { return m.bits }
func (m *UpMsg) Kind() string    { return KindUp }
func (m *DownMsg) Bits() int     { return m.bits }
func (m *DownMsg) Kind() string  { return KindDown }

// Codec constructs protocol messages with correct bit accounting for a
// given network size and message-size mode.
type Codec struct {
	S      Sizing
	Mode   Mode
	MaxIDs int // payload ids per message under the mode's cap
	cap    int
}

// NewCodec builds a Codec for an n-node network in the given mode.
func NewCodec(n int, mode Mode) (*Codec, error) {
	s, err := NewSizing(n)
	if err != nil {
		return nil, err
	}
	maxIDs, err := s.MaxIDsPerMessage(mode)
	if err != nil {
		return nil, err
	}
	cap, err := s.Cap(mode)
	if err != nil {
		return nil, err
	}
	return &Codec{S: s, Mode: mode, MaxIDs: maxIDs, cap: cap}, nil
}

// Cap returns the per-message bit cap for this codec's mode.
func (c *Codec) Cap() int { return c.cap }

func (c *Codec) msgBits(numIDs int) int {
	return c.S.OverheadBits() + numIDs*c.S.IDBits()
}

// Token builds a walk-token batch message.
func (c *Codec) Token(origin ID, phase, remaining, count int) *TokenMsg {
	return &TokenMsg{
		Origin: origin, Phase: phase, Remaining: remaining, Count: count,
		bits: c.msgBits(0),
	}
}

// Up builds a convergecast message. ids must not exceed MaxIDs.
func (c *Codec) Up(origin ID, phase int, stage UpStage, ids []ID, dDelta, pDelta int) (*UpMsg, error) {
	if len(ids) > c.MaxIDs {
		return nil, fmt.Errorf("protocol: %d ids exceed per-message limit %d", len(ids), c.MaxIDs)
	}
	return &UpMsg{
		Origin: origin, Phase: phase, Stage: stage,
		IDs: append([]ID(nil), ids...), DDelta: dDelta, PDelta: pDelta,
		bits: c.msgBits(len(ids)),
	}, nil
}

// Down builds a downcast message. ids must not exceed MaxIDs.
func (c *Codec) Down(origin ID, phase int, op DownOp, ids []ID) (*DownMsg, error) {
	if len(ids) > c.MaxIDs {
		return nil, fmt.Errorf("protocol: %d ids exceed per-message limit %d", len(ids), c.MaxIDs)
	}
	return &DownMsg{
		Origin: origin, Phase: phase, Op: op,
		IDs:  append([]ID(nil), ids...),
		bits: c.msgBits(len(ids)),
	}, nil
}
