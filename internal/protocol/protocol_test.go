package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

func TestSizingBasics(t *testing.T) {
	s, err := NewSizing(1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.L != 10 {
		t.Fatalf("L = %d, want 10", s.L)
	}
	if s.IDBits() != 40 || s.CountBits() != 20 {
		t.Fatalf("id=%d count=%d", s.IDBits(), s.CountBits())
	}
	if s.CongestCap() <= s.IDBits() {
		t.Fatal("congest cap must fit at least one id")
	}
	if s.LargeCap() != s.CongestCap()*s.L*s.L {
		t.Fatal("large cap should be congest * L^2")
	}
	if _, err := NewSizing(1); err == nil {
		t.Fatal("n=1 should fail")
	}
}

func TestSizingModeErrors(t *testing.T) {
	s, err := NewSizing(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cap(Mode(99)); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if _, err := s.MaxIDsPerMessage(Mode(99)); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if Mode(99).String() == "" || ModeCongest.String() != "congest" || ModeLarge.String() != "large" {
		t.Fatal("mode strings wrong")
	}
}

func TestMaxIDsPerMessage(t *testing.T) {
	s, err := NewSizing(256)
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.MaxIDsPerMessage(ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.MaxIDsPerMessage(ModeLarge)
	if err != nil {
		t.Fatal(err)
	}
	if small < 1 {
		t.Fatal("congest must allow at least one id")
	}
	if big < 10*small {
		t.Fatalf("large mode ids = %d should dwarf congest %d", big, small)
	}
	// A full message exactly fits the cap.
	if got := s.OverheadBits() + small*s.IDBits(); got > s.CongestCap() {
		t.Fatalf("full congest message %d bits exceeds cap %d", got, s.CongestCap())
	}
	if got := s.OverheadBits() + big*s.IDBits(); got > s.LargeCap() {
		t.Fatalf("full large message %d bits exceeds cap %d", got, s.LargeCap())
	}
}

func TestRandomIDRange(t *testing.T) {
	rng := sim.NewRand(3)
	n := 16
	max := uint64(n) * uint64(n) * uint64(n) * uint64(n)
	seen := make(map[ID]bool)
	for i := 0; i < 5000; i++ {
		id := RandomID(rng.Uint64, n)
		if id < 1 || uint64(id) > max {
			t.Fatalf("id %d out of [1, n^4]", id)
		}
		seen[id] = true
	}
	// n^4 = 65536 >> 5000 draws: collisions possible but distinct ids must
	// dominate (w.h.p. uniqueness is the paper's Section 1 footnote 3).
	if len(seen) < 4500 {
		t.Fatalf("only %d distinct ids in 5000 draws", len(seen))
	}
}

func TestCodecMessageBits(t *testing.T) {
	c, err := NewCodec(512, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	tok := c.Token(7, 1, 10, 42)
	if tok.Bits() != c.S.OverheadBits() {
		t.Fatalf("token bits = %d, want %d", tok.Bits(), c.S.OverheadBits())
	}
	if tok.Kind() != KindToken {
		t.Fatal("token kind wrong")
	}
	up, err := c.Up(7, 1, UpX1, []ID{1}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if up.Bits() != c.S.OverheadBits()+c.S.IDBits() {
		t.Fatalf("up bits = %d", up.Bits())
	}
	if up.Bits() > c.Cap() {
		t.Fatal("up message exceeds cap")
	}
	down, err := c.Down(7, 1, DownX2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if down.Kind() != KindDown || up.Kind() != KindUp {
		t.Fatal("kinds wrong")
	}
	tooMany := make([]ID, c.MaxIDs+1)
	if _, err := c.Up(7, 1, UpX1, tooMany, 0, 0); err == nil {
		t.Fatal("over-limit ids should fail")
	}
	if _, err := c.Down(7, 1, DownX2, tooMany); err == nil {
		t.Fatal("over-limit ids should fail")
	}
}

func TestBinomialHalfExactness(t *testing.T) {
	rng := sim.NewRand(9)
	// Moments: mean n/2, variance n/4.
	n := 1000
	trials := 2000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := BinomialHalf(rng, n)
		if v < 0 || v > n {
			t.Fatalf("out of range: %d", v)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / float64(trials)
	varr := sumSq/float64(trials) - mean*mean
	if math.Abs(mean-500) > 3 {
		t.Fatalf("mean = %v, want ~500", mean)
	}
	if math.Abs(varr-250) > 40 {
		t.Fatalf("variance = %v, want ~250", varr)
	}
	if BinomialHalf(rng, 0) != 0 {
		t.Fatal("Binomial(0) != 0")
	}
}

func TestDistributeUniform(t *testing.T) {
	rng := sim.NewRand(4)
	counts := DistributeUniform(rng, 10000, 4)
	var total int
	for _, c := range counts {
		total += c
		if c < 2200 || c > 2800 {
			t.Fatalf("bin count %d too far from 2500", c)
		}
	}
	if total != 10000 {
		t.Fatalf("total = %d", total)
	}
}

func TestHolderConservation(t *testing.T) {
	// Property: tokens are conserved across Step: added = moved + landed + held.
	prop := func(seed int64, count8 uint8, rem8 uint8, deg8 uint8) bool {
		rng := sim.NewRand(seed)
		count := 1 + int(count8)%500
		rem := 1 + int(rem8)%10
		deg := 1 + int(deg8)%8
		h := NewHolder()
		h.Add(1, 0, rem, count)
		var moved, landed int
		h.Step(deg, rng,
			func(port int, origin ID, phase, remaining, cnt int) {
				if port < 0 || port >= deg || remaining != rem-1 {
					t.Errorf("bad move: port=%d remaining=%d", port, remaining)
				}
				moved += cnt
			},
			func(origin ID, phase, cnt int) { landed += cnt })
		return moved+landed+h.Len() == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHolderLanding(t *testing.T) {
	rng := sim.NewRand(7)
	h := NewHolder()
	h.Add(5, 2, 1, 100) // one remaining step: stayers land here, movers leave with remaining 0
	var landedHere, movedOut int
	h.Step(4, rng,
		func(port int, origin ID, phase, remaining, cnt int) {
			if remaining != 0 {
				t.Fatalf("movers should carry remaining 0, got %d", remaining)
			}
			movedOut += cnt
		},
		func(origin ID, phase, cnt int) {
			if origin != 5 || phase != 2 {
				t.Fatalf("landing mislabeled: %d/%d", origin, phase)
			}
			landedHere += cnt
		})
	if landedHere+movedOut != 100 || !h.Empty() {
		t.Fatalf("landed=%d moved=%d held=%d", landedHere, movedOut, h.Len())
	}
}

func TestHolderIgnoresZeroAndNegative(t *testing.T) {
	h := NewHolder()
	h.Add(1, 0, 0, 10) // remaining 0 not held
	h.Add(1, 0, 5, 0)  // zero count
	h.Add(1, 0, 5, -3) // negative count
	if !h.Empty() {
		t.Fatal("holder should be empty")
	}
}

func TestHolderDropPhases(t *testing.T) {
	h := NewHolder()
	h.Add(1, 0, 5, 10)
	h.Add(1, 1, 5, 20)
	h.Add(2, 0, 5, 30)
	h.DropPhasesBefore(1, 1)
	if h.Len() != 50 {
		t.Fatalf("len = %d, want 50 (kept phase-1 origin-1 and origin-2)", h.Len())
	}
}

func TestHolderDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := sim.NewRand(seed)
		h := NewHolder()
		h.Add(1, 0, 3, 100)
		h.Add(2, 0, 2, 50)
		var trace []int
		for i := 0; i < 5 && !h.Empty(); i++ {
			h.Step(4, rng,
				func(port int, origin ID, phase, remaining, cnt int) {
					trace = append(trace, port, int(origin), remaining, cnt)
				},
				func(origin ID, phase, cnt int) {
					trace = append(trace, -1, int(origin), 0, cnt)
				})
		}
		return trace
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatal("traces differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ at %d", i)
		}
	}
}

// outbox tests use a tiny two-node clique through the real engine.

type flushProc struct {
	ob     *Outbox
	load   func(*Outbox)
	loaded bool
	got    []sim.Envelope
}

func (p *flushProc) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	p.got = append(p.got, inbox...)
	if p.ob == nil {
		return nil
	}
	if !p.loaded {
		p.loaded = true
		p.load(p.ob)
	}
	if err := p.ob.Flush(ctx, 0); err != nil {
		return err
	}
	if p.ob.Pending() > 0 {
		ctx.WakeAt(ctx.Round() + 1)
	}
	return nil
}

func runOutbox(t *testing.T, codec *Codec, load func(*Outbox)) (sim.Metrics, []sim.Envelope) {
	t.Helper()
	g := cliqueOf2(t)
	sender := &flushProc{ob: NewOutbox(codec, 1), load: load}
	receiver := &flushProc{}
	m, err := sim.Run(sim.Config{Graph: g, Seed: 1, MaxMessageBits: codec.Cap()}, []sim.Process{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	return m, receiver.got
}

func cliqueOf2(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOutboxTokenMerge(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	m, got := runOutbox(t, codec, func(ob *Outbox) {
		ob.PushToken(0, 9, 1, 5, 10)
		ob.PushToken(0, 9, 1, 5, 7)  // merges: same origin/phase/remaining
		ob.PushToken(0, 9, 1, 4, 3)  // different remaining: second message
		ob.PushToken(0, 10, 1, 5, 2) // different origin: third message
		ob.PushToken(0, 9, 1, 5, 0)  // no-op
	})
	if m.Messages != 3 {
		t.Fatalf("messages = %d, want 3 (merged batches)", m.Messages)
	}
	var total int
	for _, env := range got {
		tok := env.Payload.(*TokenMsg)
		total += tok.Count
	}
	if total != 22 {
		t.Fatalf("token count = %d, want 22", total)
	}
}

func TestOutboxUpMergeAndChunk(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]ID, 2*codec.MaxIDs+1)
	for i := range ids {
		ids[i] = ID(i + 1)
	}
	m, got := runOutbox(t, codec, func(ob *Outbox) {
		ob.PushUp(0, 9, 1, UpX1, ids, 3, 1)
		ob.PushUp(0, 9, 1, UpX1, nil, 2, 1) // deltas merge into open fragment
		ob.PushUp(0, 9, 1, UpX1, []ID{1}, 0, 0)
	})
	// ids need ceil((2k+1)/k) = 3 messages; duplicate id 1 is absorbed.
	if m.Messages != 3 {
		t.Fatalf("messages = %d, want 3", m.Messages)
	}
	seen := make(map[ID]int)
	var d, p int
	for _, env := range got {
		up := env.Payload.(*UpMsg)
		if len(up.IDs) > codec.MaxIDs {
			t.Fatalf("fragment carries %d ids > limit %d", len(up.IDs), codec.MaxIDs)
		}
		for _, id := range up.IDs {
			seen[id]++
		}
		d += up.DDelta
		p += up.PDelta
	}
	if len(seen) != len(ids) {
		t.Fatalf("saw %d distinct ids, want %d", len(seen), len(ids))
	}
	if d != 5 || p != 2 {
		t.Fatalf("deltas d=%d p=%d, want 5,2", d, p)
	}
}

func TestOutboxDownDedupe(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	m, got := runOutbox(t, codec, func(ob *Outbox) {
		ob.PushDown(0, 9, 1, DownFinal, nil)
		ob.PushDown(0, 9, 1, DownFinal, nil) // dedupes while queued
		ob.PushDown(0, 9, 1, DownX2, []ID{4, 4, 5})
	})
	want := int64(1 + (1+codec.MaxIDs)/codec.MaxIDs) // FINAL + ceil(2/MaxIDs) X2 fragments
	if m.Messages != want {
		t.Fatalf("messages = %d, want %d", m.Messages, want)
	}
	seen := map[ID]int{}
	for _, env := range got {
		if d, ok := env.Payload.(*DownMsg); ok && d.Op == DownX2 {
			for _, id := range d.IDs {
				seen[id]++
			}
		}
	}
	if len(seen) != 2 || seen[4] != 1 || seen[5] != 1 {
		t.Fatalf("dedupe failed: %v", seen)
	}
}

func TestOutboxNoMergeAfterSend(t *testing.T) {
	// A message already transmitted must not be mutated by later pushes.
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueOf2(t)
	ob := NewOutbox(codec, 1)
	step := 0
	sender := &stepFunc{fn: func(ctx *sim.Context, inbox []sim.Envelope) error {
		switch step {
		case 0:
			ob.PushToken(0, 9, 1, 5, 10)
			if err := ob.Flush(ctx, 0); err != nil {
				return err
			}
			ctx.WakeAt(ctx.Round() + 1)
		case 1:
			ob.PushToken(0, 9, 1, 5, 7) // must become a NEW message
			if err := ob.Flush(ctx, 0); err != nil {
				return err
			}
		}
		step++
		return nil
	}}
	receiver := &flushProc{}
	m, err := sim.Run(sim.Config{Graph: g, Seed: 1}, []sim.Process{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (no merge into sent message)", m.Messages)
	}
	if got := receiver.got[0].Payload.(*TokenMsg).Count; got != 10 {
		t.Fatalf("first batch count = %d, want 10 (mutated after send?)", got)
	}
}

type stepFunc struct {
	fn func(*sim.Context, []sim.Envelope) error
}

func (s *stepFunc) Step(ctx *sim.Context, inbox []sim.Envelope) error { return s.fn(ctx, inbox) }

func TestOutboxWinnerStamp(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueOf2(t)
	ob := NewOutbox(codec, 1)
	sender := &stepFunc{fn: func(ctx *sim.Context, inbox []sim.Envelope) error {
		if ctx.Round() == 0 {
			ob.PushToken(0, 9, 1, 5, 1)
			return ob.Flush(ctx, 777)
		}
		return nil
	}}
	receiver := &flushProc{}
	if _, err := sim.Run(sim.Config{Graph: g, Seed: 1}, []sim.Process{sender, receiver}); err != nil {
		t.Fatal(err)
	}
	if got := receiver.got[0].Payload.(*TokenMsg).Win; got != 777 {
		t.Fatalf("winner stamp = %d, want 777", got)
	}
}

func TestOutboxCongestOneMessagePerRound(t *testing.T) {
	// Many queued fragments drain one per round per port.
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := runOutbox(t, codec, func(ob *Outbox) {
		for i := 0; i < 5; i++ {
			ob.PushToken(0, ID(100+i), 1, 3, 1) // distinct origins: no merge
		}
	})
	if m.Messages != 5 {
		t.Fatalf("messages = %d, want 5", m.Messages)
	}
	if m.FinalRound < 4 {
		t.Fatalf("final round = %d; five fragments need five rounds on one port", m.FinalRound)
	}
}
