package protocol

import (
	"wcle/internal/sim"
)

type tokenKey struct {
	origin    ID
	phase     int
	remaining int
}

type upKey struct {
	origin ID
	phase  int
	stage  UpStage
}

type downKey struct {
	origin ID
	phase  int
	op     DownOp
}

// portQ is a FIFO of queued messages for one port, with lookup maps for the
// merge rules. Map entries always point at messages still in the queue;
// once a message is sent it can no longer be merged into.
type portQ struct {
	q      []sim.Message
	head   int
	tokens map[tokenKey]*TokenMsg
	ups    map[upKey]*UpMsg
	downs  map[downKey]*DownMsg
	// upSent / downSent implement the paper's per-edge filtering: an id that
	// has been queued (and possibly already transmitted) on this port for a
	// given (origin, phase, stage/op) is never sent again on this port.
	upSent   map[upKey]map[ID]struct{}
	downSent map[downKey]map[ID]struct{}
}

// Outbox implements the paper's per-edge congestion discipline: messages
// queue per port, at most one is transmitted per round, and queued messages
// merge where the protocol allows it — token batches with equal (origin,
// remaining) add their counts (Lemma 12's "only one token and the count of
// tokens"), convergecast fragments for the same origin and stage coalesce
// ids and add their deltas until the per-message id limit is reached.
type Outbox struct {
	codec   *Codec
	ports   []portQ
	pending int
}

// NewOutbox returns an outbox for a node with the given degree.
func NewOutbox(codec *Codec, degree int) *Outbox {
	return &Outbox{codec: codec, ports: make([]portQ, degree)}
}

// Pending returns the number of queued, unsent messages across all ports.
func (ob *Outbox) Pending() int { return ob.pending }

func (pq *portQ) push(ob *Outbox, m sim.Message) {
	pq.q = append(pq.q, m)
	ob.pending++
}

// PushToken enqueues count walk tokens for origin with the given remaining
// steps, merging with an already-queued batch when possible.
func (ob *Outbox) PushToken(port int, origin ID, phase, remaining, count int) {
	if count <= 0 {
		return
	}
	pq := &ob.ports[port]
	k := tokenKey{origin: origin, phase: phase, remaining: remaining}
	if pq.tokens == nil {
		pq.tokens = make(map[tokenKey]*TokenMsg)
	}
	if m, ok := pq.tokens[k]; ok {
		m.Count += count
		return
	}
	m := ob.codec.Token(origin, phase, remaining, count)
	pq.tokens[k] = m
	pq.push(ob, m)
}

// PushUp enqueues convergecast data: an optional id fragment plus additive
// deltas. Ids are chunked across messages per the codec's id limit; an id
// already queued or sent on this port for the same (origin, phase, stage)
// is filtered out (the paper's per-edge filtering). Deltas merge into the
// newest queued fragment regardless of its id load, or open a new one.
func (ob *Outbox) PushUp(port int, origin ID, phase int, stage UpStage, ids []ID, dDelta, pDelta int) {
	pq := &ob.ports[port]
	k := upKey{origin: origin, phase: phase, stage: stage}
	if pq.ups == nil {
		pq.ups = make(map[upKey]*UpMsg)
		pq.upSent = make(map[upKey]map[ID]struct{})
	}
	cur := pq.ups[k]
	fresh := func() *UpMsg {
		m := &UpMsg{Origin: origin, Phase: phase, Stage: stage, bits: ob.codec.msgBits(0)}
		pq.ups[k] = m
		pq.push(ob, m)
		cur = m
		return m
	}
	if dDelta != 0 || pDelta != 0 || len(ids) == 0 {
		m := cur
		if m == nil {
			m = fresh()
		}
		m.DDelta += dDelta
		m.PDelta += pDelta
	}
	if len(ids) == 0 {
		return
	}
	sent := pq.upSent[k]
	if sent == nil {
		sent = make(map[ID]struct{})
		pq.upSent[k] = sent
	}
	for _, id := range ids {
		if _, dup := sent[id]; dup {
			continue
		}
		sent[id] = struct{}{}
		m := cur
		if m == nil || len(m.IDs) >= ob.codec.MaxIDs {
			m = fresh()
		}
		m.IDs = append(m.IDs, id)
		m.bits = ob.codec.msgBits(len(m.IDs))
	}
}

// PushDown enqueues downcast data (I2 fragments, FINAL, winner floods),
// chunking ids, merging into the open fragment for the same origin, phase
// and op, and filtering ids already queued or sent on this port.
func (ob *Outbox) PushDown(port int, origin ID, phase int, op DownOp, ids []ID) {
	pq := &ob.ports[port]
	k := downKey{origin: origin, phase: phase, op: op}
	if pq.downs == nil {
		pq.downs = make(map[downKey]*DownMsg)
		pq.downSent = make(map[downKey]map[ID]struct{})
	}
	cur := pq.downs[k]
	fresh := func() *DownMsg {
		m := &DownMsg{Origin: origin, Phase: phase, Op: op, bits: ob.codec.msgBits(0)}
		pq.downs[k] = m
		pq.push(ob, m)
		cur = m
		return m
	}
	if len(ids) == 0 {
		if cur == nil {
			fresh()
		}
		return
	}
	sent := pq.downSent[k]
	if sent == nil {
		sent = make(map[ID]struct{})
		pq.downSent[k] = sent
	}
	for _, id := range ids {
		if _, dup := sent[id]; dup {
			continue
		}
		sent[id] = struct{}{}
		m := cur
		if m == nil || len(m.IDs) >= ob.codec.MaxIDs {
			m = fresh()
		}
		m.IDs = append(m.IDs, id)
		m.bits = ob.codec.msgBits(len(m.IDs))
	}
}

// Flush transmits at most one queued message per port (the CONGEST limit),
// stamping the current winner id on each outgoing message (the paper's
// "appends it to all future messages"). It returns the first send error.
func (ob *Outbox) Flush(ctx *sim.Context, win ID) error {
	for port := range ob.ports {
		pq := &ob.ports[port]
		if pq.head >= len(pq.q) {
			continue
		}
		msg := pq.q[pq.head]
		pq.head++
		ob.pending--
		switch m := msg.(type) {
		case *TokenMsg:
			k := tokenKey{origin: m.Origin, phase: m.Phase, remaining: m.Remaining}
			if pq.tokens[k] == m {
				delete(pq.tokens, k)
			}
			m.Win = win
		case *UpMsg:
			k := upKey{origin: m.Origin, phase: m.Phase, stage: m.Stage}
			if pq.ups[k] == m {
				delete(pq.ups, k)
			}
			m.Win = win
		case *DownMsg:
			k := downKey{origin: m.Origin, phase: m.Phase, op: m.Op}
			if pq.downs[k] == m {
				delete(pq.downs, k)
			}
			m.Win = win
		}
		if err := ctx.Send(port, msg); err != nil {
			return err
		}
		if pq.head == len(pq.q) {
			pq.q = pq.q[:0]
			pq.head = 0
		}
	}
	return nil
}
