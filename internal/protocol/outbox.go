package protocol

import (
	"wcle/internal/sim"
)

type tokenKey struct {
	origin    ID
	phase     int
	remaining int
}

// upSlot / downSlot hold the merge state of one (origin, phase, stage/op)
// flow on one port: the still-queued message fragments may merge into, and
// the per-edge filter of ids already queued or sent. Slots live in small
// arrays indexed by (phase, stage/op) inside a per-origin entry, so the hot
// path does one fast 64-bit map lookup plus an array index instead of
// hashing a composite struct key.
type upSlot struct {
	cur  *UpMsg
	sent FastSet
}

type downSlot struct {
	cur  *DownMsg
	sent FastSet
}

// upState / downState hold one origin's slots on one port as short linear
// lists: only (phase, stage/op) combinations actually used on this edge get
// an entry (a handful at a time — the current global phase plus possibly a
// FINAL-latched one), so lookup is a scan over a few cache-resident
// entries and memory tracks real traffic, not the phase-space volume.
type upState struct {
	phases []int32
	stages []UpStage
	slots  []upSlot
}

func (st *upState) slot(phase int, stage UpStage) *upSlot {
	for i, p := range st.phases {
		if p == int32(phase) && st.stages[i] == stage {
			return &st.slots[i]
		}
	}
	st.phases = append(st.phases, int32(phase))
	st.stages = append(st.stages, stage)
	st.slots = append(st.slots, upSlot{})
	return &st.slots[len(st.slots)-1]
}

func (st *upState) peek(phase int, stage UpStage) *upSlot {
	for i, p := range st.phases {
		if p == int32(phase) && st.stages[i] == stage {
			return &st.slots[i]
		}
	}
	return nil
}

type downState struct {
	phases []int32
	ops    []DownOp
	slots  []downSlot
}

func (st *downState) slot(phase int, op DownOp) *downSlot {
	for i, p := range st.phases {
		if p == int32(phase) && st.ops[i] == op {
			return &st.slots[i]
		}
	}
	st.phases = append(st.phases, int32(phase))
	st.ops = append(st.ops, op)
	st.slots = append(st.slots, downSlot{})
	return &st.slots[len(st.slots)-1]
}

func (st *downState) peek(phase int, op DownOp) *downSlot {
	for i, p := range st.phases {
		if p == int32(phase) && st.ops[i] == op {
			return &st.slots[i]
		}
	}
	return nil
}

// resendRec is one retransmission obligation: a private snapshot of an
// already-transmitted message plus the number of repeats still owed.
type resendRec struct {
	msg  sim.Message
	left int
}

// portQ is a FIFO of queued messages for one port, with per-origin merge
// state. Slot `cur` pointers always point at messages still in the queue;
// once a message is sent it can no longer be merged into. The `sent` filter
// sets implement the paper's per-edge filtering: an id that has been queued
// (and possibly already transmitted) on this port for a given (origin,
// phase, stage/op) is never sent again on this port.
type portQ struct {
	q      []sim.Message
	head   int
	tokens map[tokenKey]*TokenMsg
	ups    map[ID]*upState
	downs  map[ID]*downState
	// resend is the retransmission FIFO (only used when Outbox.Resend > 0).
	resend []resendRec
	rhead  int
}

// Outbox implements the paper's per-edge congestion discipline: messages
// queue per port, at most one is transmitted per round, and queued messages
// merge where the protocol allows it — token batches with equal (origin,
// remaining) add their counts (Lemma 12's "only one token and the count of
// tokens"), convergecast fragments for the same origin and stage coalesce
// ids and add their deltas until the per-message id limit is reached.
type Outbox struct {
	codec   *Codec
	ports   []portQ
	pending int
	resends int

	// Pool, when non-nil, supplies recycled message objects for the send
	// path (see MsgPool).
	Pool *MsgPool

	// Resend, when positive, retransmits each idempotent message up to
	// Resend extra times on its port, after all fresh traffic — redundancy
	// against lossy transports (a Drop fault plane). Only messages whose
	// duplication is harmless are repeated: downcasts (id-set floods and
	// the FINAL/winner latches) and delta-free convergecast fragments.
	// Token batches and delta-carrying fragments are additive, not
	// idempotent, and are never duplicated. Each retransmission is a real
	// send under the CONGEST discipline and is counted as such.
	Resend int
}

// NewOutbox returns an outbox for a node with the given degree.
func NewOutbox(codec *Codec, degree int) *Outbox {
	return &Outbox{codec: codec, ports: make([]portQ, degree)}
}

// Pending returns the number of queued, unsent messages across all ports,
// including pending retransmissions.
func (ob *Outbox) Pending() int { return ob.pending + ob.resends }

func (pq *portQ) push(ob *Outbox, m sim.Message) {
	pq.q = append(pq.q, m)
	ob.pending++
}

// PushToken enqueues count walk tokens for origin with the given remaining
// steps, merging with an already-queued batch when possible.
func (ob *Outbox) PushToken(port int, origin ID, phase, remaining, count int) {
	if count <= 0 {
		return
	}
	pq := &ob.ports[port]
	k := tokenKey{origin: origin, phase: phase, remaining: remaining}
	if pq.tokens == nil {
		pq.tokens = make(map[tokenKey]*TokenMsg)
	}
	if m, ok := pq.tokens[k]; ok {
		m.Count += count
		return
	}
	m := ob.Pool.token()
	m.Origin, m.Phase, m.Remaining, m.Count = origin, phase, remaining, count
	m.bits = ob.codec.msgBits(0)
	pq.tokens[k] = m
	pq.push(ob, m)
}

// PushUp enqueues convergecast data: an optional id fragment plus additive
// deltas. Ids are chunked across messages per the codec's id limit; an id
// already queued or sent on this port for the same (origin, phase, stage)
// is filtered out (the paper's per-edge filtering). Deltas merge into the
// newest queued fragment regardless of its id load, or open a new one.
func (ob *Outbox) PushUp(port int, origin ID, phase int, stage UpStage, ids []ID, dDelta, pDelta int) {
	pq := &ob.ports[port]
	if pq.ups == nil {
		pq.ups = make(map[ID]*upState)
	}
	st := pq.ups[origin]
	if st == nil {
		st = &upState{}
		pq.ups[origin] = st
	}
	slot := st.slot(phase, stage)
	fresh := func() *UpMsg {
		m := ob.Pool.up()
		m.Origin, m.Phase, m.Stage = origin, phase, stage
		m.bits = ob.codec.msgBits(0)
		slot.cur = m
		pq.push(ob, m)
		return m
	}
	if dDelta != 0 || pDelta != 0 || len(ids) == 0 {
		m := slot.cur
		if m == nil {
			m = fresh()
		}
		m.DDelta += dDelta
		m.PDelta += pDelta
	}
	for _, id := range ids {
		if !slot.sent.Add(id) {
			continue
		}
		m := slot.cur
		if m == nil || len(m.IDs) >= ob.codec.MaxIDs {
			m = fresh()
		}
		m.IDs = append(m.IDs, id)
		m.bits = ob.codec.msgBits(len(m.IDs))
	}
}

// PushDown enqueues downcast data (I2 fragments, FINAL, winner floods),
// chunking ids, merging into the open fragment for the same origin, phase
// and op, and filtering ids already queued or sent on this port.
func (ob *Outbox) PushDown(port int, origin ID, phase int, op DownOp, ids []ID) {
	pq := &ob.ports[port]
	if pq.downs == nil {
		pq.downs = make(map[ID]*downState)
	}
	st := pq.downs[origin]
	if st == nil {
		st = &downState{}
		pq.downs[origin] = st
	}
	slot := st.slot(phase, op)
	fresh := func() *DownMsg {
		m := ob.Pool.down()
		m.Origin, m.Phase, m.Op = origin, phase, op
		m.bits = ob.codec.msgBits(0)
		slot.cur = m
		pq.push(ob, m)
		return m
	}
	if len(ids) == 0 {
		if slot.cur == nil {
			fresh()
		}
		return
	}
	for _, id := range ids {
		if !slot.sent.Add(id) {
			continue
		}
		m := slot.cur
		if m == nil || len(m.IDs) >= ob.codec.MaxIDs {
			m = fresh()
		}
		m.IDs = append(m.IDs, id)
		m.bits = ob.codec.msgBits(len(m.IDs))
	}
}

// resendable reports whether duplicating a message is harmless: id floods
// and latches are set operations at every receiver, while token counts and
// X1 deltas are additive.
func resendable(m sim.Message) bool {
	switch t := m.(type) {
	case *DownMsg:
		return true
	case *UpMsg:
		return t.DDelta == 0 && t.PDelta == 0
	}
	return false
}

// snapshot clones a message into an outbox-owned copy for retransmission
// (the transmitted original is consumed — and possibly recycled — by the
// receiver).
func (ob *Outbox) snapshot(m sim.Message) sim.Message {
	switch t := m.(type) {
	case *UpMsg:
		c := ob.Pool.up()
		ids := append(c.IDs, t.IDs...)
		*c = *t
		c.IDs = ids
		return c
	case *DownMsg:
		c := ob.Pool.down()
		ids := append(c.IDs, t.IDs...)
		*c = *t
		c.IDs = ids
		return c
	}
	return nil
}

// Flush transmits at most one queued message per port (the CONGEST limit),
// stamping the current winner id on each outgoing message (the paper's
// "appends it to all future messages"). Fresh traffic is sent first; when a
// port has none and Resend is configured, one owed retransmission goes out
// instead. It returns the first send error.
func (ob *Outbox) Flush(ctx *sim.Context, win ID) error {
	for port := range ob.ports {
		pq := &ob.ports[port]
		if pq.head >= len(pq.q) {
			if err := ob.flushResend(ctx, port, pq, win); err != nil {
				return err
			}
			continue
		}
		msg := pq.q[pq.head]
		pq.q[pq.head] = nil
		pq.head++
		ob.pending--
		switch m := msg.(type) {
		case *TokenMsg:
			k := tokenKey{origin: m.Origin, phase: m.Phase, remaining: m.Remaining}
			if pq.tokens[k] == m {
				delete(pq.tokens, k)
			}
			m.Win = win
		case *UpMsg:
			if slot := pq.ups[m.Origin].peek(m.Phase, m.Stage); slot != nil && slot.cur == m {
				slot.cur = nil
			}
			m.Win = win
		case *DownMsg:
			if slot := pq.downs[m.Origin].peek(m.Phase, m.Op); slot != nil && slot.cur == m {
				slot.cur = nil
			}
			m.Win = win
		}
		if ob.Resend > 0 && resendable(msg) {
			pq.resend = append(pq.resend, resendRec{msg: ob.snapshot(msg), left: ob.Resend})
			ob.resends += ob.Resend
		}
		if err := ctx.Send(port, msg); err != nil {
			return err
		}
		if pq.head == len(pq.q) {
			pq.q = pq.q[:0]
			pq.head = 0
		}
	}
	return nil
}

// flushResend transmits one owed retransmission on an otherwise idle port.
func (ob *Outbox) flushResend(ctx *sim.Context, port int, pq *portQ, win ID) error {
	if pq.rhead >= len(pq.resend) {
		return nil
	}
	rec := &pq.resend[pq.rhead]
	var out sim.Message
	if rec.left > 1 {
		out = ob.snapshot(rec.msg)
		rec.left--
	} else {
		out = rec.msg
		rec.msg = nil
		pq.rhead++
		if pq.rhead == len(pq.resend) {
			pq.resend = pq.resend[:0]
			pq.rhead = 0
		}
	}
	ob.resends--
	switch m := out.(type) {
	case *UpMsg:
		m.Win = win
	case *DownMsg:
		m.Win = win
	}
	return ctx.Send(port, out)
}
