package protocol

// This file holds the protocol's id-set representations. Two concerns are
// separated deliberately:
//
//   - FastSet is a tiny open-addressing hash set used for pure membership
//     filtering (the outbox's per-edge filters, a contender's I2
//     accumulator). It exposes no iteration, so its probe order can never
//     leak into protocol behavior.
//   - TrackedSet adds the members in insertion order for sets that are
//     also iterated; consumers sort at the point of use, which is what the
//     replayability contract requires anyway.

// fastSetMinTable is the initial table size (power of two).
const fastSetMinTable = 16

// FastSet is an allocation-lean set of non-zero IDs (protocol ids are drawn
// from [1, n^4], so 0 is free as the empty slot marker). Small sets live in
// an inline array (most per-edge filter sets hold a handful of ids and
// never touch the heap); larger ones migrate to a linear-probed
// power-of-two table. The zero value is ready to use.
type FastSet struct {
	n     int
	small [4]ID
	tab   []ID
}

// hashID mixes an id for table placement (splitmix64's multiplier; the
// probe order is internal and never observable).
func hashID(id ID) uint64 {
	z := uint64(id) * 0x9E3779B97F4A7C15
	return z ^ (z >> 29)
}

// Len returns the number of members.
func (s *FastSet) Len() int { return s.n }

// Reset empties the set, keeping the table.
func (s *FastSet) Reset() {
	clear(s.tab)
	s.n = 0
}

// Has reports membership.
func (s *FastSet) Has(id ID) bool {
	if s.tab == nil {
		for i := 0; i < s.n; i++ {
			if s.small[i] == id {
				return true
			}
		}
		return false
	}
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.tab) - 1)
	for i := hashID(id) & mask; ; i = (i + 1) & mask {
		switch s.tab[i] {
		case id:
			return true
		case 0:
			return false
		}
	}
}

// Add inserts id; reports whether it was absent. id must be non-zero.
func (s *FastSet) Add(id ID) bool {
	if s.tab == nil {
		for i := 0; i < s.n; i++ {
			if s.small[i] == id {
				return false
			}
		}
		if s.n < len(s.small) {
			s.small[s.n] = id
			s.n++
			return true
		}
		// Migrate the inline members to a heap table.
		s.tab = make([]ID, fastSetMinTable)
		n := s.n
		s.n = 0
		for i := 0; i < n; i++ {
			s.insert(s.small[i])
		}
	} else if 4*s.n >= 3*len(s.tab) {
		s.grow()
	}
	return s.insert(id)
}

// insert adds id to the heap table (which must exist and have room).
func (s *FastSet) insert(id ID) bool {
	mask := uint64(len(s.tab) - 1)
	for i := hashID(id) & mask; ; i = (i + 1) & mask {
		switch s.tab[i] {
		case id:
			return false
		case 0:
			s.tab[i] = id
			s.n++
			return true
		}
	}
}

func (s *FastSet) grow() {
	old := s.tab
	s.tab = make([]ID, 2*len(old))
	mask := uint64(len(s.tab) - 1)
	for _, id := range old {
		if id == 0 {
			continue
		}
		i := hashID(id) & mask
		for s.tab[i] != 0 {
			i = (i + 1) & mask
		}
		s.tab[i] = id
	}
}

// TrackedSet is a FastSet plus the members in insertion order, for sets
// that are also iterated (sorted by the consumer at the point of use).
type TrackedSet struct {
	set  FastSet
	List []ID
}

// Add inserts id; reports whether it was absent.
func (s *TrackedSet) Add(id ID) bool {
	if !s.set.Add(id) {
		return false
	}
	s.List = append(s.List, id)
	return true
}

// Has reports membership.
func (s *TrackedSet) Has(id ID) bool { return s.set.Has(id) }

// Len returns the number of members.
func (s *TrackedSet) Len() int { return s.set.Len() }

// Reset empties the set, keeping its storage.
func (s *TrackedSet) Reset() {
	s.set.Reset()
	s.List = s.List[:0]
}
