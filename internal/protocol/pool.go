package protocol

// MsgPool recycles protocol message objects. An election allocates one
// message object per accepted send on the hot path; with a pool, the
// receiving node returns each object (and its IDs backing array) after
// handling it, and its own outbox draws from the pool for the next sends.
// Pools are strictly per-node: only the owning node's Step touches one, so
// the concurrent execution mode needs no locking. Object identity never
// carries protocol meaning, so pooling cannot change a run's behavior.
//
// Callers must only Put messages they have fully consumed: a pooled
// message's fields and IDs array are overwritten on reuse.
type MsgPool struct {
	tokens []*TokenMsg
	ups    []*UpMsg
	downs  []*DownMsg
}

// PutToken recycles a token batch message.
func (p *MsgPool) PutToken(m *TokenMsg) {
	if p == nil {
		return
	}
	p.tokens = append(p.tokens, m)
}

// PutUp recycles a convergecast message.
func (p *MsgPool) PutUp(m *UpMsg) {
	if p == nil {
		return
	}
	p.ups = append(p.ups, m)
}

// PutDown recycles a downcast message.
func (p *MsgPool) PutDown(m *DownMsg) {
	if p == nil {
		return
	}
	p.downs = append(p.downs, m)
}

// Put recycles any protocol message; non-protocol messages are ignored.
func (p *MsgPool) Put(m interface{ Kind() string }) {
	switch t := m.(type) {
	case *TokenMsg:
		p.PutToken(t)
	case *UpMsg:
		p.PutUp(t)
	case *DownMsg:
		p.PutDown(t)
	}
}

// token pops a recycled token message or allocates a fresh one.
func (p *MsgPool) token() *TokenMsg {
	if p == nil || len(p.tokens) == 0 {
		return &TokenMsg{}
	}
	m := p.tokens[len(p.tokens)-1]
	p.tokens = p.tokens[:len(p.tokens)-1]
	*m = TokenMsg{}
	return m
}

// up pops a recycled convergecast message or allocates a fresh one. The
// IDs backing array is retained for reuse.
func (p *MsgPool) up() *UpMsg {
	if p == nil || len(p.ups) == 0 {
		return &UpMsg{}
	}
	m := p.ups[len(p.ups)-1]
	p.ups = p.ups[:len(p.ups)-1]
	ids := m.IDs[:0]
	*m = UpMsg{IDs: ids}
	return m
}

// down pops a recycled downcast message or allocates a fresh one.
func (p *MsgPool) down() *DownMsg {
	if p == nil || len(p.downs) == 0 {
		return &DownMsg{}
	}
	m := p.downs[len(p.downs)-1]
	p.downs = p.downs[:len(p.downs)-1]
	ids := m.IDs[:0]
	*m = DownMsg{IDs: ids}
	return m
}
