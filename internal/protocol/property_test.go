package protocol

import (
	"testing"
	"testing/quick"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// Property: every message the codec can construct respects its mode's cap,
// across network sizes and id loads.
func TestMessagesRespectCapProperty(t *testing.T) {
	prop := func(nRaw uint16, kRaw uint8, modeRaw bool) bool {
		n := 2 + int(nRaw)%8192
		mode := ModeCongest
		if modeRaw {
			mode = ModeLarge
		}
		c, err := NewCodec(n, mode)
		if err != nil {
			return false
		}
		k := int(kRaw) % (c.MaxIDs + 1)
		ids := make([]ID, k)
		for i := range ids {
			ids[i] = ID(i + 1)
		}
		up, err := c.Up(1, 0, UpX1, ids, 5, -3)
		if err != nil {
			return false
		}
		down, err := c.Down(1, 0, DownX2, ids)
		if err != nil {
			return false
		}
		tok := c.Token(1, 0, 9, 100)
		return up.Bits() <= c.Cap() && down.Bits() <= c.Cap() && tok.Bits() <= c.Cap()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// simulateUpPush drives an outbox on a 2-clique: ids are pushed in two
// halves plus a full duplicate, and the receiver records what arrives.
func simulateUpPush(tb testing.TB, seed int64, codec *Codec, ids []ID, got map[ID]int) {
	tb.Helper()
	g, err := graph.Clique(2, nil)
	if err != nil {
		tb.Fatal(err)
	}
	ob := NewOutbox(codec, 1)
	loaded := false
	sender := &stepFunc{fn: func(ctx *sim.Context, inbox []sim.Envelope) error {
		if !loaded {
			loaded = true
			half := len(ids) / 2
			ob.PushUp(0, 9, 1, UpX1, ids[:half], 1, 0)
			ob.PushUp(0, 9, 1, UpX1, ids[half:], 0, 1)
			ob.PushUp(0, 9, 1, UpX1, ids, 0, 0) // duplicates: must be filtered
		}
		if err := ob.Flush(ctx, 0); err != nil {
			return err
		}
		if ob.Pending() > 0 {
			ctx.WakeAt(ctx.Round() + 1)
		}
		return nil
	}}
	receiver := &stepFunc{fn: func(ctx *sim.Context, inbox []sim.Envelope) error {
		for _, env := range inbox {
			if up, ok := env.Payload.(*UpMsg); ok {
				for _, id := range up.IDs {
					got[id]++
				}
			}
		}
		return nil
	}}
	if _, err := sim.Run(sim.Config{Graph: g, Seed: seed, MaxMessageBits: codec.Cap()},
		[]sim.Process{sender, receiver}); err != nil {
		tb.Fatal(err)
	}
}

// TestOutboxIDConservation: everything pushed arrives exactly once per
// port, regardless of chunking and duplicate pushes (the filtering rule
// must lose nothing and deliver nothing twice).
func TestOutboxIDConservation(t *testing.T) {
	for k := 1; k <= 40; k += 3 {
		codec, err := NewCodec(64, ModeCongest)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]ID, k)
		for i := range ids {
			ids[i] = ID(i + 1)
		}
		got := map[ID]int{}
		simulateUpPush(t, int64(k), codec, ids, got)
		if len(got) != len(ids) {
			t.Fatalf("k=%d: %d distinct ids arrived, want %d", k, len(got), len(ids))
		}
		for _, id := range ids {
			if got[id] != 1 {
				t.Fatalf("k=%d: id %d arrived %d times", k, id, got[id])
			}
		}
	}
}

// Property: Holder.Step conserves tokens over multi-round evolutions with
// multiple origins (movers are re-injected to keep the system closed).
func TestHolderMultiOriginConservation(t *testing.T) {
	prop := func(seed int64, a, b uint8) bool {
		rng := sim.NewRand(seed)
		ca, cb := 1+int(a)%200, 1+int(b)%200
		h := NewHolder()
		h.Add(1, 0, 4, ca)
		h.Add(2, 0, 6, cb)
		landed := 0
		for i := 0; i < 10 && !h.Empty(); i++ {
			h.Step(5, rng,
				func(port int, origin ID, phase, remaining, cnt int) {
					if remaining > 0 {
						h.Add(origin, phase, remaining, cnt)
					} else {
						landed += cnt
					}
				},
				func(origin ID, phase, cnt int) { landed += cnt })
		}
		return landed+h.Len() == ca+cb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistributeUniform conserves the item count and never produces
// negative bins.
func TestDistributeUniformProperty(t *testing.T) {
	prop := func(seed int64, mRaw, dRaw uint8) bool {
		rng := sim.NewRand(seed)
		m := int(mRaw) % 500
		d := 1 + int(dRaw)%16
		out := DistributeUniform(rng, m, d)
		if len(out) != d {
			return false
		}
		total := 0
		for _, c := range out {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BinomialHalf stays within [0, n] and is deterministic per seed.
func TestBinomialHalfProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 2000
		a := BinomialHalf(sim.NewRand(seed), n)
		b := BinomialHalf(sim.NewRand(seed), n)
		return a == b && a >= 0 && a <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
