// Package protocol provides the message-level plumbing shared by the
// election algorithm and the baselines: CONGEST bit-size accounting, the
// walk/exchange/control message types, a per-port outbox that merges and
// chunks messages exactly as the paper's Lemma 12 prescribes (one token
// plus a count instead of many tokens; id sets split into O(log n)-bit
// pieces; duplicate filtering), and the lazy-random-walk token splitting
// logic.
//
// The package also holds the performance substrate of the send hot path:
// allocation-lean id sets (FastSet for pure membership, TrackedSet when
// members are also iterated), per-node message pooling (MsgPool), and the
// Outbox.Resend redundancy knob for lossy transports — idempotent control
// messages only; token batches and delta fragments are additive state and
// are never duplicated.
//
// Identities are protocol-level: random draws from [1, n^4] (RandomID),
// never node indices — the model is anonymous, and nothing in this
// package reads sim.Envelope.From.
package protocol
