package protocol

import (
	"math/rand"
	"reflect"
	"testing"

	"wcle/internal/sim"
	"wcle/internal/wire"
)

// roundTrip encodes one message and decodes it back.
func roundTrip(t *testing.T, m sim.Message) sim.Message {
	t.Helper()
	buf, err := wire.AppendMessage(nil, m)
	if err != nil {
		t.Fatalf("encoding %#v: %v", m, err)
	}
	got, err := wire.DecodeMessage(buf)
	if err != nil {
		t.Fatalf("decoding %#v: %v", m, err)
	}
	return got
}

// TestWireRoundTripProperty: randomized round-trip over every protocol
// message kind. Equality is structural, including the unexported bit
// accounting: the receiving shard must account exactly what the sender
// paid.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, err := NewCodec(512, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	randID := func() ID { return RandomID(rng.Uint64, 512) }
	randIDs := func() []ID {
		k := rng.Intn(c.MaxIDs + 1)
		if k == 0 {
			return nil
		}
		ids := make([]ID, k)
		for i := range ids {
			ids[i] = randID()
		}
		return ids
	}
	for i := 0; i < 500; i++ {
		tok := c.Token(randID(), rng.Intn(40), rng.Intn(1<<16), rng.Intn(1<<20))
		tok.Win = ID(rng.Intn(3)) * randID() // sometimes zero
		if got := roundTrip(t, tok); !reflect.DeepEqual(got, tok) {
			t.Fatalf("token round trip:\n got %#v\nwant %#v", got, tok)
		}

		up, err := c.Up(randID(), rng.Intn(40), UpStage(1+rng.Intn(3)), randIDs(),
			rng.Intn(2001)-1000, rng.Intn(2001)-1000)
		if err != nil {
			t.Fatal(err)
		}
		up.Win = ID(rng.Intn(3)) * randID()
		if got := roundTrip(t, up); !reflect.DeepEqual(got, up) {
			t.Fatalf("up round trip:\n got %#v\nwant %#v", got, up)
		}

		down, err := c.Down(randID(), rng.Intn(40), DownOp(1+rng.Intn(3)), randIDs())
		if err != nil {
			t.Fatal(err)
		}
		down.Win = ID(rng.Intn(3)) * randID()
		if got := roundTrip(t, down); !reflect.DeepEqual(got, down) {
			t.Fatalf("down round trip:\n got %#v\nwant %#v", got, down)
		}
	}
}

// TestWireDecodeRejectsTruncation: every prefix of a valid encoding fails
// loudly instead of decoding to something else.
func TestWireDecodeRejectsTruncation(t *testing.T) {
	c, err := NewCodec(128, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.Up(42, 3, UpX1, []ID{7}, -2, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := wire.AppendMessage(nil, up)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := wire.DecodeMessage(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", cut, len(buf))
		}
	}
	if _, err := wire.DecodeMessage(append(buf, 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}
