package protocol

// Wire codecs for the paper's protocol messages, so gilbertrs18 elections
// can cross shard boundaries in the cluster runtime (internal/cluster).
// The bit-size field is carried explicitly: the receiving shard must
// account the exact size the sending codec computed, whatever sizing mode
// the run used.

import (
	"encoding/binary"
	"fmt"

	"wcle/internal/sim"
	"wcle/internal/wire"
)

// Wire ids of the protocol messages. Part of the wire format: never reuse.
const (
	wireToken = 1
	wireUp    = 2
	wireDown  = 3
)

func init() {
	wire.Register(wireToken, wire.MsgCodec{
		Kind:   KindToken,
		Append: appendToken,
		Decode: decodeToken,
	})
	wire.Register(wireUp, wire.MsgCodec{
		Kind:   KindUp,
		Append: appendUp,
		Decode: decodeUp,
	})
	wire.Register(wireDown, wire.MsgCodec{
		Kind:   KindDown,
		Append: appendDown,
		Decode: decodeDown,
	})
}

func appendToken(buf []byte, m sim.Message) ([]byte, error) {
	t, ok := m.(*TokenMsg)
	if !ok {
		return buf, fmt.Errorf("wire: token codec got %T", m)
	}
	buf = binary.AppendUvarint(buf, uint64(t.Origin))
	buf = binary.AppendUvarint(buf, uint64(t.Phase))
	buf = binary.AppendUvarint(buf, uint64(t.Remaining))
	buf = binary.AppendUvarint(buf, uint64(t.Count))
	buf = binary.AppendUvarint(buf, uint64(t.Win))
	buf = binary.AppendUvarint(buf, uint64(t.bits))
	return buf, nil
}

func decodeToken(b []byte) (sim.Message, error) {
	var f [5]uint64
	var err error
	for i := range f {
		if f[i], b, err = wire.ReadUvarint(b); err != nil {
			return nil, err
		}
	}
	bits, b, err := wire.ReadBits(b)
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in token", wire.ErrCorrupt, len(b))
	}
	return &TokenMsg{Origin: ID(f[0]), Phase: int(f[1]), Remaining: int(f[2]),
		Count: int(f[3]), Win: ID(f[4]), bits: bits}, nil
}

func appendUp(buf []byte, m sim.Message) ([]byte, error) {
	u, ok := m.(*UpMsg)
	if !ok {
		return buf, fmt.Errorf("wire: up codec got %T", m)
	}
	buf = binary.AppendUvarint(buf, uint64(u.Origin))
	buf = binary.AppendUvarint(buf, uint64(u.Phase))
	buf = append(buf, byte(u.Stage))
	buf = binary.AppendVarint(buf, int64(u.DDelta))
	buf = binary.AppendVarint(buf, int64(u.PDelta))
	buf = binary.AppendUvarint(buf, uint64(u.Win))
	buf = binary.AppendUvarint(buf, uint64(u.bits))
	buf = appendIDs(buf, u.IDs)
	return buf, nil
}

func decodeUp(b []byte) (sim.Message, error) {
	origin, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	phase, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: up message truncated at stage", wire.ErrCorrupt)
	}
	stage := UpStage(b[0])
	b = b[1:]
	dDelta, b, err := wire.ReadVarint(b)
	if err != nil {
		return nil, err
	}
	pDelta, b, err := wire.ReadVarint(b)
	if err != nil {
		return nil, err
	}
	win, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	bits, b, err := wire.ReadBits(b)
	if err != nil {
		return nil, err
	}
	ids, b, err := decodeIDs(b)
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in up message", wire.ErrCorrupt, len(b))
	}
	return &UpMsg{Origin: ID(origin), Phase: int(phase), Stage: stage, IDs: ids,
		DDelta: int(dDelta), PDelta: int(pDelta), Win: ID(win), bits: bits}, nil
}

func appendDown(buf []byte, m sim.Message) ([]byte, error) {
	d, ok := m.(*DownMsg)
	if !ok {
		return buf, fmt.Errorf("wire: down codec got %T", m)
	}
	buf = binary.AppendUvarint(buf, uint64(d.Origin))
	buf = binary.AppendUvarint(buf, uint64(d.Phase))
	buf = append(buf, byte(d.Op))
	buf = binary.AppendUvarint(buf, uint64(d.Win))
	buf = binary.AppendUvarint(buf, uint64(d.bits))
	buf = appendIDs(buf, d.IDs)
	return buf, nil
}

func decodeDown(b []byte) (sim.Message, error) {
	origin, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	phase, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: down message truncated at op", wire.ErrCorrupt)
	}
	op := DownOp(b[0])
	b = b[1:]
	win, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	bits, b, err := wire.ReadBits(b)
	if err != nil {
		return nil, err
	}
	ids, b, err := decodeIDs(b)
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in down message", wire.ErrCorrupt, len(b))
	}
	return &DownMsg{Origin: ID(origin), Phase: int(phase), Op: op, IDs: ids,
		Win: ID(win), bits: bits}, nil
}

// appendIDs encodes an id slice, count-prefixed. A nil slice and an empty
// one encode identically; decode returns nil for count zero, matching how
// the constructors leave absent id sets nil.
func appendIDs(buf []byte, ids []ID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

func decodeIDs(b []byte) ([]ID, []byte, error) {
	n, b, err := wire.ReadCount(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	ids := make([]ID, n)
	for i := range ids {
		var v uint64
		if v, b, err = wire.ReadUvarint(b); err != nil {
			return nil, nil, err
		}
		ids[i] = ID(v)
	}
	return ids, b, nil
}
