package protocol

import (
	"fmt"
	"math/bits"
)

// ID is a protocol-level node identity, drawn uniformly from [1, n^4]
// (Algorithm 1 line 1). Zero means "no id".
type ID uint64

// Sizing computes message sizes in bits for a network of a given size.
// L is ceil(log2 n); ids take 4L bits (they live in [1, n^4]), counts and
// walk lengths take 2L bits (they are bounded by polynomial functions of n
// in all our protocols), and flags take O(1).
type Sizing struct {
	N int
	L int
}

// NewSizing returns the Sizing for an n-node network.
func NewSizing(n int) (Sizing, error) {
	if n < 2 {
		return Sizing{}, fmt.Errorf("protocol: sizing needs n >= 2, got %d", n)
	}
	return Sizing{N: n, L: bits.Len(uint(n - 1))}, nil
}

// IDBits is the width of one identity field.
func (s Sizing) IDBits() int { return 4 * s.L }

// CountBits is the width of one counter field (token counts, walk lengths,
// aggregation deltas).
func (s Sizing) CountBits() int { return 2 * s.L }

// FlagBits is the width reserved for type tags and booleans in a message.
const FlagBits = 8

// CongestCap is the per-message bit cap in the standard CONGEST model:
// a constant number of id-sized words, i.e. Theta(log n) bits. It is sized
// to fit a message carrying an origin id, a winner id, two payload ids and
// two counters.
func (s Sizing) CongestCap() int { return 4*s.IDBits() + 2*s.CountBits() + FlagBits }

// LargeCap is the per-message cap for the paper's Lemma 12 relaxed mode,
// O(log^3 n) bits, which lets a whole id set travel in one message.
func (s Sizing) LargeCap() int { return s.CongestCap() * s.L * s.L }

// Mode selects the message-size regime of Lemma 12.
type Mode int

const (
	// ModeCongest is the standard CONGEST model: O(log n)-bit messages.
	ModeCongest Mode = iota + 1
	// ModeLarge allows O(log^3 n)-bit messages (Lemma 12's second bound).
	ModeLarge
)

func (m Mode) String() string {
	switch m {
	case ModeCongest:
		return "congest"
	case ModeLarge:
		return "large"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Cap returns the per-message bit cap for the mode.
func (s Sizing) Cap(m Mode) (int, error) {
	switch m {
	case ModeCongest:
		return s.CongestCap(), nil
	case ModeLarge:
		return s.LargeCap(), nil
	default:
		return 0, fmt.Errorf("protocol: unknown mode %v", m)
	}
}

// MaxIDsPerMessage returns how many payload ids fit in one exchange message
// under the mode's cap, after reserving space for the envelope fields
// (origin, winner, two counters, flags). Always at least 1.
func (s Sizing) MaxIDsPerMessage(m Mode) (int, error) {
	cap, err := s.Cap(m)
	if err != nil {
		return 0, err
	}
	k := (cap - s.OverheadBits()) / s.IDBits()
	if k < 1 {
		k = 1
	}
	return k, nil
}

// OverheadBits is the fixed envelope size of every protocol message: an
// origin id, a winner id, three counter fields (phase plus two
// kind-specific counters), and the flag byte. Message constructors use the
// same formula, so a message with MaxIDsPerMessage ids exactly fits the cap.
func (s Sizing) OverheadBits() int { return 2*s.IDBits() + 3*s.CountBits() + FlagBits }

// RandomID draws an id uniformly from [1, n^4] using the given random
// source (a function returning uniform uint64, typically rng.Uint64).
func RandomID(uint64fn func() uint64, n int) ID {
	max := uint64(n) * uint64(n) * uint64(n) * uint64(n) // n <= 2^15 keeps this in range
	// Rejection sampling for exact uniformity on [0, max).
	limit := ^uint64(0) - (^uint64(0) % max)
	for {
		v := uint64fn()
		if v < limit {
			return ID(v%max) + 1
		}
	}
}
