package protocol

import (
	"testing"

	"wcle/internal/sim"
)

// runOutboxResend is runOutbox with a configurable Resend.
func runOutboxResend(t *testing.T, codec *Codec, resend int, load func(*Outbox)) (sim.Metrics, []sim.Envelope) {
	t.Helper()
	g := cliqueOf2(t)
	ob := NewOutbox(codec, 1)
	ob.Resend = resend
	sender := &flushProc{ob: ob, load: load}
	receiver := &flushProc{}
	m, err := sim.Run(sim.Config{Graph: g, Seed: 1, MaxMessageBits: codec.Cap()}, []sim.Process{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	return m, receiver.got
}

// Resend retransmits idempotent messages (downcasts, delta-free ups) the
// configured number of extra times, after fresh traffic; token batches and
// delta-carrying fragments go out exactly once.
func TestOutboxResendIdempotentOnly(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	m, got := runOutboxResend(t, codec, 2, func(ob *Outbox) {
		ob.PushDown(0, 9, 1, DownX2, []ID{4})   // idempotent: 1 + 2 resends
		ob.PushUp(0, 9, 1, UpX1, nil, 3, 1)     // delta-carrying: exactly once
		ob.PushToken(0, 9, 1, 5, 10)            // tokens: exactly once
		ob.PushUp(0, 9, 1, UpX3, []ID{7}, 0, 0) // idempotent: 1 + 2 resends
	})
	// 2 idempotent messages * 3 transmissions + 2 one-shot messages.
	if m.Messages != 8 {
		t.Fatalf("messages = %d, want 8 (2*3 + 2)", m.Messages)
	}
	var downs, tokens, upX1, upX3 int
	for _, env := range got {
		switch msg := env.Payload.(type) {
		case *DownMsg:
			downs++
			if len(msg.IDs) != 1 || msg.IDs[0] != 4 {
				t.Fatalf("retransmitted down fragment corrupted: %+v", msg)
			}
		case *TokenMsg:
			tokens++
			if msg.Count != 10 {
				t.Fatalf("token batch corrupted: %+v", msg)
			}
		case *UpMsg:
			switch msg.Stage {
			case UpX1:
				upX1++
				if msg.DDelta != 3 || msg.PDelta != 1 {
					t.Fatalf("X1 deltas corrupted: %+v", msg)
				}
			case UpX3:
				upX3++
				if len(msg.IDs) != 1 || msg.IDs[0] != 7 {
					t.Fatalf("retransmitted X3 fragment corrupted: %+v", msg)
				}
			}
		}
	}
	if downs != 3 || upX3 != 3 || upX1 != 1 || tokens != 1 {
		t.Fatalf("transmissions: downs=%d upX3=%d upX1=%d tokens=%d, want 3/3/1/1",
			downs, upX3, upX1, tokens)
	}
}

// With Resend = 0 (the default) nothing is duplicated: the pre-refactor
// single-transmission behavior.
func TestOutboxResendOffByDefault(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := runOutboxResend(t, codec, 0, func(ob *Outbox) {
		ob.PushDown(0, 9, 1, DownX2, []ID{4})
		ob.PushUp(0, 9, 1, UpX3, []ID{7}, 0, 0)
	})
	if m.Messages != 2 {
		t.Fatalf("messages = %d, want 2", m.Messages)
	}
}

// Pending must report owed retransmissions so nodes keep waking to drain
// them (quiescence would otherwise strand the resend queue).
func TestOutboxPendingIncludesResends(t *testing.T) {
	codec, err := NewCodec(64, ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	g := cliqueOf2(t)
	ob := NewOutbox(codec, 1)
	ob.Resend = 1
	loaded := false
	flushes := 0
	sender := processAdapter{fn: func(ctx *sim.Context, inbox []sim.Envelope) error {
		if !loaded {
			loaded = true
			ob.PushDown(0, 9, 1, DownFinal, nil)
		}
		if err := ob.Flush(ctx, 0); err != nil {
			return err
		}
		flushes++
		if ob.Pending() > 0 {
			ctx.WakeAt(ctx.Round() + 1)
		}
		return nil
	}}
	m, err := sim.Run(sim.Config{Graph: g, Seed: 1}, []sim.Process{sender, processAdapter{fn: func(*sim.Context, []sim.Envelope) error { return nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages != 2 {
		t.Fatalf("messages = %d, want original + 1 resend", m.Messages)
	}
	if flushes < 2 {
		t.Fatalf("sender flushed %d times; Pending must keep it awake for the resend", flushes)
	}
}

type processAdapter struct {
	fn func(*sim.Context, []sim.Envelope) error
}

func (p processAdapter) Step(ctx *sim.Context, inbox []sim.Envelope) error { return p.fn(ctx, inbox) }
