// Package broadcast implements the dissemination substrates the paper
// composes with: push-pull rumor spreading (Karp et al. [22], used by
// Corollary 14 to upgrade implicit to explicit election in O(log n / phi)
// time and O(n log n / phi) messages), a push-only variant, and BFS
// spanning-tree construction (the Corollary 27 comparator).
package broadcast

import (
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// gossipKind labels gossip messages.
const (
	kindRumor = "rumor"
	kindPull  = "pull"
)

type gossipMsg struct {
	rumor protocol.ID // 0 for a pull request
	bits  int
}

func (m *gossipMsg) Bits() int { return m.bits }
func (m *gossipMsg) Kind() string {
	if m.rumor != 0 {
		return kindRumor
	}
	return kindPull
}

var _ sim.Message = (*gossipMsg)(nil)

// gossipNode runs synchronous push-pull: every round each node contacts one
// uniformly random neighbor — informed nodes push the rumor, uninformed
// nodes send a pull request (answered with the rumor in the next round).
// In push-only mode uninformed nodes stay silent.
type gossipNode struct {
	sizing   protocol.Sizing
	horizon  int
	pushOnly bool

	informed   bool
	rumor      protocol.ID
	informedAt int
	replyPorts map[int]struct{}
}

func (nd *gossipNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	round := ctx.Round()
	for _, env := range inbox {
		m, ok := env.Payload.(*gossipMsg)
		if !ok {
			return fmt.Errorf("broadcast: unexpected message kind %q", env.Payload.Kind())
		}
		if m.rumor != 0 {
			if !nd.informed {
				nd.informed = true
				nd.rumor = m.rumor
				nd.informedAt = round
			}
		} else if nd.informed {
			if nd.replyPorts == nil {
				nd.replyPorts = make(map[int]struct{})
			}
			nd.replyPorts[env.Port] = struct{}{}
		}
	}
	if round >= nd.horizon {
		return nil
	}
	sent := make(map[int]struct{}, 2)
	if nd.informed {
		// Answer pending pull requests.
		for port := range nd.replyPorts {
			if _, dup := sent[port]; dup {
				continue
			}
			sent[port] = struct{}{}
			if err := ctx.Send(port, nd.rumorMsg()); err != nil {
				return err
			}
		}
		nd.replyPorts = nil
		// Push to one random neighbor.
		port := ctx.Rand().Intn(ctx.Degree())
		if _, dup := sent[port]; !dup {
			if err := ctx.Send(port, nd.rumorMsg()); err != nil {
				return err
			}
		}
	} else if !nd.pushOnly {
		port := ctx.Rand().Intn(ctx.Degree())
		msg := &gossipMsg{bits: protocol.FlagBits}
		if err := ctx.Send(port, msg); err != nil {
			return err
		}
	}
	ctx.WakeAt(round + 1)
	return nil
}

func (nd *gossipNode) rumorMsg() *gossipMsg {
	return &gossipMsg{rumor: nd.rumor, bits: nd.sizing.IDBits() + protocol.FlagBits}
}

// Result reports a gossip run.
type Result struct {
	// Informed counts nodes holding the rumor at the horizon.
	Informed int
	// AllInformed reports full coverage.
	AllInformed bool
	// CompletionRound is the round the last node learned the rumor (-1 if
	// coverage is incomplete).
	CompletionRound int
	Metrics         sim.Metrics
}

// PushPull spreads a rumor from the source for `horizon` rounds using
// push-pull (pushOnly=false) or push-only gossip. The rumor value is an
// arbitrary nonzero id (e.g. the elected leader's id in Corollary 14).
func PushPull(g *graph.Graph, source int, rumor protocol.ID, seed int64, horizon int, pushOnly bool) (*Result, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("broadcast: source %d out of range", source)
	}
	if rumor == 0 {
		return nil, fmt.Errorf("broadcast: rumor id must be nonzero")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("broadcast: horizon must be positive, got %d", horizon)
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*gossipNode, g.N())
	procs := make([]sim.Process, g.N())
	for v := range nodes {
		nodes[v] = &gossipNode{sizing: sizing, horizon: horizon, pushOnly: pushOnly}
		procs[v] = nodes[v]
	}
	nodes[source].informed = true
	nodes[source].rumor = rumor
	metrics, err := sim.Run(sim.Config{
		Graph:          g,
		Seed:           seed,
		MaxMessageBits: sizing.CongestCap(),
		MaxRounds:      horizon + 8,
	}, procs)
	if err != nil {
		return nil, fmt.Errorf("broadcast: gossip failed: %w", err)
	}
	res := &Result{Metrics: metrics, CompletionRound: -1}
	last := 0
	for _, nd := range nodes {
		if nd.informed {
			res.Informed++
			if nd.informedAt > last {
				last = nd.informedAt
			}
		}
	}
	res.AllInformed = res.Informed == g.N()
	if res.AllInformed {
		res.CompletionRound = last
	}
	return res, nil
}
