// Package broadcast exposes the dissemination substrates the paper
// composes with: push-pull rumor spreading (Karp et al. [22], used by
// Corollary 14 to upgrade implicit to explicit election in O(log n / phi)
// time and O(n log n / phi) messages), a push-only variant, and BFS
// spanning-tree construction (the Corollary 27 comparator).
//
// The substrates themselves live in internal/engine as first-class
// registered protocols ("pushpull", "bfstree"), runnable on every delivery
// plane — the in-process sim, the TCP cluster, every fault plane. This
// package is the domain-shaped veneer: the same protocols under their
// historical signatures, folding the engine's per-node output vectors back
// into Result and TreeResult.
package broadcast

import (
	"fmt"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// Result reports a gossip run.
type Result struct {
	// Informed counts nodes holding the rumor at the horizon.
	Informed int
	// AllInformed reports full coverage.
	AllInformed bool
	// CompletionRound is the round the last node learned the rumor (-1 if
	// coverage is incomplete).
	CompletionRound int
	Metrics         sim.Metrics
}

// FoldPushPull folds a pushpull engine report — in-process or reassembled
// by the cluster merge — into a Result. Output rows are [informed,
// informed_at, rumor] per engine's "pushpull" protocol.
func FoldPushPull(n int, eres *engine.Result) *Result {
	res := &Result{Metrics: eres.Metrics, CompletionRound: -1}
	last := 0
	for _, o := range eres.Outputs {
		if len(o) < 2 || o[0] == 0 {
			continue
		}
		res.Informed++
		if at := int(o[1]); at > last {
			last = at
		}
	}
	res.AllInformed = res.Informed == n
	if res.AllInformed {
		res.CompletionRound = last
	}
	return res
}

// PushPull spreads a rumor from the source for `horizon` rounds using
// push-pull (pushOnly=false) or push-only gossip. The rumor value is an
// arbitrary nonzero id (e.g. the elected leader's id in Corollary 14).
func PushPull(g *graph.Graph, source int, rumor protocol.ID, seed int64, horizon int, pushOnly bool) (*Result, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("broadcast: source %d out of range", source)
	}
	if rumor == 0 {
		return nil, fmt.Errorf("broadcast: rumor id must be nonzero")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("broadcast: horizon must be positive, got %d", horizon)
	}
	p, err := engine.New(engine.PushPull, engine.Config{
		Source:   source,
		Rumor:    uint64(rumor),
		Horizon:  horizon,
		PushOnly: pushOnly,
	})
	if err != nil {
		return nil, err
	}
	eres, err := engine.Run(p, g, engine.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return FoldPushPull(g.N(), eres), nil
}
