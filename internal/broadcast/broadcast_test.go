package broadcast

import (
	"math"
	"math/rand"
	"testing"

	"wcle/internal/graph"
)

func TestPushPullInformsAllOnClique(t *testing.T) {
	g, err := graph.Clique(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 8 * int(math.Ceil(math.Log2(64)))
	res, err := PushPull(g, 0, 777, 1, horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatalf("only %d/%d informed", res.Informed, g.N())
	}
	// Completion in O(log n) rounds on a clique (generous factor 4).
	if res.CompletionRound > 4*int(math.Ceil(math.Log2(64))) {
		t.Fatalf("completion round %d too slow for a clique", res.CompletionRound)
	}
}

func TestPushPullCompletionOrdering(t *testing.T) {
	// Push-pull completes much faster on an expander than on a cycle at
	// equal n (conductance dependence of [22]/[17]).
	n := 64
	exp, err := graph.RandomRegular(n, 6, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := graph.Cycle(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 6 * n
	re, err := PushPull(exp, 0, 5, 3, horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := PushPull(cyc, 0, 5, 3, horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if !re.AllInformed || !rc.AllInformed {
		t.Fatalf("coverage incomplete: expander=%v cycle=%v", re.AllInformed, rc.AllInformed)
	}
	if re.CompletionRound >= rc.CompletionRound {
		t.Fatalf("expander completion %d should beat cycle %d", re.CompletionRound, rc.CompletionRound)
	}
}

func TestPushOnlySlowerOrEqualCoverage(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	horizon := 50
	pp, err := PushPull(g, 0, 5, 9, horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	po, err := PushPull(g, 0, 5, 9, horizon, true)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Informed < po.Informed {
		t.Fatalf("push-pull %d informed < push-only %d", pp.Informed, po.Informed)
	}
	// Push-only must send strictly fewer messages (uninformed are silent).
	if po.Metrics.Messages >= pp.Metrics.Messages {
		t.Fatalf("push-only messages %d >= push-pull %d", po.Metrics.Messages, pp.Metrics.Messages)
	}
}

func TestPushPullMessageBudgetShape(t *testing.T) {
	// Push-pull sends at most ~2 messages per node per round.
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 20
	res, err := PushPull(g, 0, 5, 5, horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages > int64(2*g.N()*horizon) {
		t.Fatalf("messages = %d exceed 2*n*horizon = %d", res.Metrics.Messages, 2*g.N()*horizon)
	}
	if res.Metrics.Messages < int64(horizon) {
		t.Fatalf("messages = %d suspiciously low", res.Metrics.Messages)
	}
}

func TestPushPullValidation(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PushPull(g, -1, 5, 1, 10, false); err == nil {
		t.Fatal("bad source should fail")
	}
	if _, err := PushPull(g, 0, 0, 1, 10, false); err == nil {
		t.Fatal("zero rumor should fail")
	}
	if _, err := PushPull(g, 0, 5, 1, 0, false); err == nil {
		t.Fatal("zero horizon should fail")
	}
}

func TestBFSTree(t *testing.T) {
	g, err := graph.Hypercube(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFSTree(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("tree incomplete")
	}
	dist := graph.BFSDist(g, 3)
	for v := range res.Parent {
		if v == 3 {
			if res.Parent[v] != -1 || res.Depth[v] != 0 {
				t.Fatalf("root bookkeeping wrong: parent=%d depth=%d", res.Parent[v], res.Depth[v])
			}
			continue
		}
		if res.Depth[v] != dist[v] {
			t.Fatalf("node %d depth %d != BFS distance %d", v, res.Depth[v], dist[v])
		}
		p := res.Parent[v]
		if p < 0 || !g.HasEdge(v, p) {
			t.Fatalf("node %d parent %d is not a neighbor", v, p)
		}
		if res.Depth[p] != res.Depth[v]-1 {
			t.Fatalf("node %d parent depth %d not one less than %d", v, res.Depth[p], res.Depth[v])
		}
	}
	// Flooding costs Theta(m): every edge carries at least one JOIN in at
	// least one direction, at most two.
	if res.Metrics.Messages < int64(g.M()) || res.Metrics.Messages > int64(2*g.M()) {
		t.Fatalf("messages = %d outside [m, 2m] = [%d, %d]", res.Metrics.Messages, g.M(), 2*g.M())
	}
}

func TestBFSTreeValidation(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSTree(g, 9, 1); err == nil {
		t.Fatal("bad root should fail")
	}
}
