package broadcast

import (
	"fmt"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/sim"
)

// TreeResult reports a BFS spanning-tree construction.
type TreeResult struct {
	// Parent maps node -> parent node (-1 for the root, -2 if unreached).
	Parent []int
	// Depth maps node -> BFS depth (root 0).
	Depth []int
	// Complete reports whether every node joined.
	Complete bool
	Metrics  sim.Metrics
}

// FoldBFSTree folds a bfstree engine report into a TreeResult, resolving
// each node's parent port back to a neighbor index through g. Output rows
// are [joined, parent_port, depth] per engine's "bfstree" protocol.
func FoldBFSTree(g *graph.Graph, eres *engine.Result) *TreeResult {
	res := &TreeResult{
		Parent:   make([]int, g.N()),
		Depth:    make([]int, g.N()),
		Complete: true,
		Metrics:  eres.Metrics,
	}
	for v := 0; v < g.N(); v++ {
		var o []int64
		if v < len(eres.Outputs) {
			o = eres.Outputs[v]
		}
		switch {
		case len(o) < 3 || o[0] == 0:
			res.Parent[v] = -2
			res.Depth[v] = -1
			res.Complete = false
		case o[1] == -1:
			res.Parent[v] = -1
			res.Depth[v] = 0
		default:
			res.Parent[v] = g.NeighborAt(v, int(o[1]))
			res.Depth[v] = int(o[2])
		}
	}
	return res
}

// BFSTree builds a BFS spanning tree rooted at root by flooding. The
// message complexity is Theta(m) — the Corollary 27 regime.
func BFSTree(g *graph.Graph, root int, seed int64) (*TreeResult, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("broadcast: root %d out of range", root)
	}
	p, err := engine.New(engine.BFSTree, engine.Config{Root: root})
	if err != nil {
		return nil, err
	}
	eres, err := engine.Run(p, g, engine.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return FoldBFSTree(g, eres), nil
}
