package broadcast

import (
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

type joinMsg struct {
	bits int
}

func (m *joinMsg) Bits() int    { return m.bits }
func (m *joinMsg) Kind() string { return "join" }

var _ sim.Message = (*joinMsg)(nil)

// bfsNode builds a BFS spanning tree by flooding: the first JOIN received
// fixes the parent port; the node then floods JOIN on all other ports.
type bfsNode struct {
	isRoot     bool
	started    bool
	joined     bool
	parentPort int
	depth      int
}

func (nd *bfsNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	flood := func(skip int) error {
		for port := 0; port < ctx.Degree(); port++ {
			if port == skip {
				continue
			}
			if err := ctx.Send(port, &joinMsg{bits: protocol.FlagBits}); err != nil {
				return err
			}
		}
		return nil
	}
	if nd.isRoot && !nd.started {
		nd.started = true
		nd.joined = true
		nd.parentPort = -1
		return flood(-1)
	}
	for _, env := range inbox {
		if _, ok := env.Payload.(*joinMsg); !ok {
			return fmt.Errorf("broadcast: unexpected message kind %q", env.Payload.Kind())
		}
		if !nd.joined {
			nd.joined = true
			nd.parentPort = env.Port
			nd.depth = ctx.Round()
			return flood(env.Port)
		}
	}
	return nil
}

// TreeResult reports a BFS spanning-tree construction.
type TreeResult struct {
	// Parent maps node -> parent node (-1 for the root, -2 if unreached).
	Parent []int
	// Depth maps node -> BFS depth (root 0).
	Depth []int
	// Complete reports whether every node joined.
	Complete bool
	Metrics  sim.Metrics
}

// BFSTree builds a BFS spanning tree rooted at root by flooding. The
// message complexity is Theta(m) — the Corollary 27 regime.
func BFSTree(g *graph.Graph, root int, seed int64) (*TreeResult, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("broadcast: root %d out of range", root)
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*bfsNode, g.N())
	procs := make([]sim.Process, g.N())
	for v := range nodes {
		nodes[v] = &bfsNode{isRoot: v == root}
		procs[v] = nodes[v]
	}
	metrics, err := sim.Run(sim.Config{
		Graph:          g,
		Seed:           seed,
		MaxMessageBits: sizing.CongestCap(),
		MaxRounds:      g.N() + 8,
	}, procs)
	if err != nil {
		return nil, fmt.Errorf("broadcast: bfs tree failed: %w", err)
	}
	res := &TreeResult{
		Parent:   make([]int, g.N()),
		Depth:    make([]int, g.N()),
		Complete: true,
		Metrics:  metrics,
	}
	for v, nd := range nodes {
		switch {
		case !nd.joined:
			res.Parent[v] = -2
			res.Depth[v] = -1
			res.Complete = false
		case nd.parentPort == -1:
			res.Parent[v] = -1
			res.Depth[v] = 0
		default:
			res.Parent[v] = g.NeighborAt(v, nd.parentPort)
			res.Depth[v] = nd.depth
		}
	}
	return res, nil
}
