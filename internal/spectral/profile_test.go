package spectral

import (
	"math/rand"
	"reflect"
	"testing"

	"wcle/internal/graph"
)

func TestComputeProfileClique(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ComputeProfile(g, ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.TmixExact {
		t.Fatal("n=16 is under the exact limit; tmix should be exact")
	}
	want, err := MixingTime(g, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tmix != want {
		t.Fatalf("profile tmix %d != MixingTime %d", p.Tmix, want)
	}
	if p.Lambda2 <= 0 || p.Lambda2 >= 1 {
		t.Fatalf("clique lambda2 = %v out of (0,1)", p.Lambda2)
	}
	if !(p.CheegerLo <= p.CheegerHi) {
		t.Fatalf("Cheeger sandwich inverted: [%v, %v]", p.CheegerLo, p.CheegerHi)
	}
	// The clique's conductance is ~1/2 and must sit inside the sandwich.
	phi, err := ConductanceBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi < p.CheegerLo-1e-9 || phi > p.CheegerHi+1e-9 {
		t.Fatalf("phi=%v outside Cheeger bounds [%v, %v]", phi, p.CheegerLo, p.CheegerHi)
	}
	if p.N != 16 || p.M != g.M() {
		t.Fatalf("profile sizes %d/%d", p.N, p.M)
	}
}

func TestComputeProfileSampledDeterministic(t *testing.T) {
	g, err := graph.RandomRegular(300, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	opts := ProfileOptions{ExactStartLimit: 64, SampleStarts: 8}
	a, err := ComputeProfile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.TmixExact {
		t.Fatal("n=300 over the exact limit; tmix should be sampled")
	}
	b, err := ComputeProfile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("profile is not deterministic: %+v vs %+v", a, b)
	}
	if a.Tmix <= 0 {
		t.Fatalf("expander tmix = %d", a.Tmix)
	}
}

// MaxWork turns a profile whose mixing search would be effectively
// unbounded (large cycles mix in Theta(n^2) steps) into a fast
// deterministic error instead of an open-ended computation.
func TestComputeProfileMaxWork(t *testing.T) {
	g, err := graph.Cycle(4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := ProfileOptions{ExactStartLimit: 8, SampleStarts: 4, MaxWork: 1 << 20}
	if _, err := ComputeProfile(g, start); err == nil {
		t.Fatal("budgeted profile of a slow-mixing cycle should fail, not run ~n^2 steps")
	}
	// A generous budget leaves well-conditioned graphs unaffected.
	k, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := ComputeProfile(k, ProfileOptions{MaxWork: 1 << 31})
	if err != nil {
		t.Fatal(err)
	}
	free, err := ComputeProfile(k, ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *bounded != *free {
		t.Fatalf("budget changed a cheap profile: %+v vs %+v", bounded, free)
	}
}

func TestComputeProfileErrors(t *testing.T) {
	if _, err := ComputeProfile(mustGraph(t, 1), ProfileOptions{}); err == nil {
		t.Fatal("single node should error")
	}
	// Two isolated pairs: disconnected, the walk never mixes.
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build("disconnected", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeProfile(g, ProfileOptions{Tmax: 200}); err == nil {
		t.Fatal("disconnected graph should fail to mix")
	}
}

func mustGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	g, err := b.Build("tiny", nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleStarts(t *testing.T) {
	s := sampleStarts(100, 4)
	if !reflect.DeepEqual(s, []int{0, 25, 50, 75}) {
		t.Fatalf("sampleStarts = %v", s)
	}
	if got := sampleStarts(3, 16); len(got) != 3 {
		t.Fatalf("oversampling should clamp to n: %v", got)
	}
}
