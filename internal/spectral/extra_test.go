package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wcle/internal/graph"
)

func TestLambda2Hypercube(t *testing.T) {
	// Q_d adjacency eigenvalues are d-2k; the normalized simple walk has
	// 1 - 2k/d, so the lazy walk's second eigenvalue is 1 - 1/d.
	for _, dim := range []int{3, 4, 5} {
		g, err := graph.Hypercube(dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		lam, err := Lambda2(g, 30000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - 1/float64(dim)
		if math.Abs(lam-want) > 1e-6 {
			t.Fatalf("dim %d: lambda2 = %v, want %v", dim, lam, want)
		}
	}
}

func TestLambda2Path(t *testing.T) {
	// Path P_n: normalized adjacency second eigenvalue is cos(pi/(n-1));
	// lazy: (1 + cos(pi/(n-1)))/2.
	n := 10
	g, err := graph.Path(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := Lambda2(g, 60000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Cos(math.Pi/float64(n-1))) / 2
	if math.Abs(lam-want) > 1e-5 {
		t.Fatalf("lambda2 = %v, want %v", lam, want)
	}
}

func TestMixingTimeBarbellSlow(t *testing.T) {
	// The barbell's bridge throttles mixing: its tmix must dwarf the
	// clique's at comparable size.
	bb, err := graph.Barbell(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	kk, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := MixingTime(bb, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := MixingTime(kk, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tb < 10*tk {
		t.Fatalf("barbell tmix %d should dwarf clique tmix %d", tb, tk)
	}
}

func TestExpanderMixingLogarithmic(t *testing.T) {
	// Random 8-regular graphs mix in O(log n): doubling n should grow tmix
	// by roughly a constant additive term, not multiplicatively.
	rng := rand.New(rand.NewSource(12))
	var tms []int
	for _, n := range []int{64, 128, 256} {
		g, err := graph.RandomRegular(n, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := MixingTimeSampled(g, DefaultEps(n), 100000, []int{0, n / 2})
		if err != nil {
			t.Fatal(err)
		}
		tms = append(tms, tm)
	}
	if tms[2] > 2*tms[0] {
		t.Fatalf("expander mixing grew too fast: %v", tms)
	}
}

// Property: one lazy step never increases the inf-norm distance to
// stationarity (contraction), for random start vertices on a fixed graph.
func TestStepContractionProperty(t *testing.T) {
	g, err := graph.RandomRegular(20, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalk(g)
	pi := w.Stationary()
	prop := func(srcRaw uint8, steps uint8) bool {
		src := int(srcRaw) % g.N()
		cur := make([]float64, g.N())
		next := make([]float64, g.N())
		cur[src] = 1
		prev := InfNormDiff(cur, pi)
		for i := 0; i < int(steps)%50; i++ {
			w.Step(next, cur)
			cur, next = next, cur
			d := InfNormDiff(cur, pi)
			if d > prev+1e-12 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepCutErrors(t *testing.T) {
	if _, _, err := SweepCut(&graph.Graph{}, 100, 1e-6); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestLowerBoundGraphConductanceBracket(t *testing.T) {
	// Lemma 16 end to end: the constructed graph's conductance estimates
	// bracket Theta(alpha).
	alpha := 1.0 / 196
	lb, err := graph.NewLowerBound(768, alpha, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, lb.N())
	for _, v := range lb.Cliques[0] {
		inSet[v] = true
	}
	cliquePhi := graph.CutConductance(lb.Graph, inSet)
	sweepPhi, _, err := SweepCut(lb.Graph, 3000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Upper bounds within a constant of alpha.
	for _, phi := range []float64{cliquePhi, sweepPhi} {
		if phi < alpha/10 || phi > alpha*10 {
			t.Fatalf("phi estimate %v not Theta(alpha=%v)", phi, alpha)
		}
	}
}
