package spectral

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wcle/internal/graph"
)

func mustClique(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Clique(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStationaryIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.RandomRegular(32, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalk(g)
	pi := w.Stationary()
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("stationary mass = %v", sum)
	}
	next := make([]float64, g.N())
	w.Step(next, pi)
	if d := InfNormDiff(next, pi); d > 1e-12 {
		t.Fatalf("P pi* != pi*, diff %v", d)
	}
}

func TestStationaryNonRegular(t *testing.T) {
	g, err := graph.Path(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalk(g)
	pi := w.Stationary()
	// Path endpoints have degree 1, middle nodes degree 2; 2m = 8.
	if math.Abs(pi[0]-1.0/8) > 1e-12 || math.Abs(pi[2]-2.0/8) > 1e-12 {
		t.Fatalf("stationary wrong: %v", pi)
	}
	next := make([]float64, g.N())
	w.Step(next, pi)
	if d := InfNormDiff(next, pi); d > 1e-12 {
		t.Fatalf("P pi* != pi* on path, diff %v", d)
	}
}

func TestStepPreservesMass(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalk(g)
	cur := make([]float64, g.N())
	cur[3] = 1
	next := make([]float64, g.N())
	for i := 0; i < 10; i++ {
		w.Step(next, cur)
		cur, next = next, cur
		var sum float64
		for _, p := range cur {
			sum += p
			if p < 0 {
				t.Fatal("negative probability")
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("mass leak at step %d: %v", i, sum)
		}
	}
}

func TestMixingDistanceMonotone(t *testing.T) {
	g, err := graph.Cycle(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalk(g)
	pi := w.Stationary()
	cur := make([]float64, g.N())
	cur[0] = 1
	next := make([]float64, g.N())
	prev := InfNormDiff(cur, pi)
	for i := 0; i < 200; i++ {
		w.Step(next, cur)
		cur, next = next, cur
		d := InfNormDiff(cur, pi)
		if d > prev+1e-12 {
			t.Fatalf("mixing distance increased at step %d: %v -> %v", i, prev, d)
		}
		prev = d
	}
}

func TestMixingTimeClique(t *testing.T) {
	g := mustClique(t, 64)
	tm, err := MixingTime(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Cliques mix essentially immediately: tmix = O(1) (a handful of lazy
	// steps to reach 1/2n accuracy).
	if tm < 1 || tm > 12 {
		t.Fatalf("clique tmix = %d, want small constant", tm)
	}
}

func TestMixingTimeOrdering(t *testing.T) {
	// Well-connected families mix much faster than the cycle at equal n.
	n := 64
	clique := mustClique(t, n)
	hc, err := graph.Hypercube(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := graph.Cycle(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmClique, err := MixingTime(clique, 100000)
	if err != nil {
		t.Fatal(err)
	}
	tmHc, err := MixingTime(hc, 100000)
	if err != nil {
		t.Fatal(err)
	}
	tmCyc, err := MixingTime(cyc, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !(tmClique <= tmHc && tmHc < tmCyc) {
		t.Fatalf("ordering violated: clique %d, hypercube %d, cycle %d", tmClique, tmHc, tmCyc)
	}
	// Cycle mixing is Theta(n^2 log n)-ish; at n=64 it must exceed n.
	if tmCyc < n {
		t.Fatalf("cycle tmix = %d suspiciously small", tmCyc)
	}
}

func TestMixingTimeSampledMatchesTransitive(t *testing.T) {
	// On a vertex-transitive graph every start gives the same mixing time.
	g, err := graph.Hypercube(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	all, err := MixingTime(g, 10000)
	if err != nil {
		t.Fatal(err)
	}
	one, err := MixingTimeSampled(g, DefaultEps(g.N()), 10000, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if all != one {
		t.Fatalf("transitive graph: sampled %d != exact %d", one, all)
	}
}

func TestMixFromErrors(t *testing.T) {
	g := mustClique(t, 8)
	w := NewWalk(g)
	if _, err := w.MixFrom(99, 0.1, 10); err == nil {
		t.Fatal("out-of-range start should fail")
	}
	// Disconnected graph never mixes.
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	dg, err := b.Build("disc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWalk(dg).MixFrom(0, DefaultEps(4), 500); !errors.Is(err, ErrNoMix) {
		t.Fatalf("want ErrNoMix, got %v", err)
	}
	if _, err := MixingTimeSampled(g, 0.1, 10, nil); err == nil {
		t.Fatal("no starts should fail")
	}
}

func TestLambda2Clique(t *testing.T) {
	// Lazy walk on K_n: nontrivial eigenvalues of the simple walk are
	// -1/(n-1); lazy maps x -> (1+x)/2, so lambda2 = (1 - 1/(n-1))/2.
	n := 16
	g := mustClique(t, n)
	lam, err := Lambda2(g, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 1.0/float64(n-1)) / 2
	if math.Abs(lam-want) > 1e-6 {
		t.Fatalf("lambda2 = %v, want %v", lam, want)
	}
}

func TestLambda2Cycle(t *testing.T) {
	// Simple walk on C_n has eigenvalues cos(2 pi k / n); lazy lambda2 =
	// (1 + cos(2 pi/n))/2.
	n := 24
	g, err := graph.Cycle(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := Lambda2(g, 20000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Cos(2*math.Pi/float64(n))) / 2
	if math.Abs(lam-want) > 1e-5 {
		t.Fatalf("lambda2 = %v, want %v", lam, want)
	}
}

func TestLambda2Errors(t *testing.T) {
	if _, err := Lambda2(&graph.Graph{}, 10, 1e-6); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestCheegerBounds(t *testing.T) {
	lo, hi := CheegerBounds(0.75)
	if math.Abs(lo-0.25) > 1e-12 || math.Abs(hi-1) > 1e-12 {
		t.Fatalf("bounds = (%v,%v)", lo, hi)
	}
	lo, hi = CheegerBounds(1.5) // clamped
	if lo != 0 || hi != 0 {
		t.Fatalf("clamped bounds = (%v,%v)", lo, hi)
	}
}

func TestCheegerSandwichOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	graphs := []*graph.Graph{}
	g1 := mustClique(t, 12)
	graphs = append(graphs, g1)
	g2, err := graph.Cycle(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g2)
	g3, err := graph.RandomRegular(14, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g3)
	g4, err := graph.Barbell(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g4)
	for _, g := range graphs {
		phi, err := ConductanceBrute(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		lam, err := Lambda2(g, 20000, 1e-13)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		lo, hi := CheegerBounds(lam)
		if phi < lo-1e-6 || phi > hi+1e-6 {
			t.Errorf("%s: phi=%v outside Cheeger [%v,%v] (lambda2=%v)", g.Name(), phi, lo, hi, lam)
		}
	}
}

func TestConductanceBruteClique(t *testing.T) {
	// phi(K_n) for even n: half cut gives (n/2)^2 / (n/2*(n-1)) = n/(2(n-1)).
	n := 8
	g := mustClique(t, n)
	phi, err := ConductanceBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) / (2 * float64(n-1))
	if math.Abs(phi-want) > 1e-12 {
		t.Fatalf("phi(K%d) = %v, want %v", n, phi, want)
	}
}

func TestConductanceBruteCycle(t *testing.T) {
	// phi(C_n) = 2/(2*(n/2)) = 2/n for even n (half cut).
	n := 10
	g, err := graph.Cycle(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ConductanceBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / float64(n)
	if math.Abs(phi-want) > 1e-12 {
		t.Fatalf("phi(C%d) = %v, want %v", n, phi, want)
	}
}

func TestConductanceBruteLimits(t *testing.T) {
	g := mustClique(t, 2)
	if _, err := ConductanceBrute(g); err != nil {
		t.Fatalf("K2 should work: %v", err)
	}
	big := mustClique(t, 23)
	if _, err := ConductanceBrute(big); err == nil {
		t.Fatal("n > 22 should be rejected")
	}
}

func TestSweepCutFindsBarbellBottleneck(t *testing.T) {
	g, err := graph.Barbell(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	phi, set, err := SweepCut(g, 20000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ConductanceBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep is an upper bound and on a barbell it should find the bridge
	// cut exactly.
	if phi < exact-1e-9 {
		t.Fatalf("sweep %v below exact %v", phi, exact)
	}
	if math.Abs(phi-exact) > 1e-9 {
		t.Fatalf("sweep should find the barbell bottleneck: %v vs %v", phi, exact)
	}
	// The achieving set should be one of the two cliques.
	var count int
	for _, in := range set {
		if in {
			count++
		}
	}
	if count != 8 {
		t.Fatalf("sweep set size = %d, want 8", count)
	}
}

func TestSweepCutUpperBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		g, err := graph.RandomRegular(16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ConductanceBrute(g)
		if err != nil {
			t.Fatal(err)
		}
		sweep, _, err := SweepCut(g, 20000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		if sweep < exact-1e-9 {
			t.Fatalf("sweep %v below exact conductance %v", sweep, exact)
		}
	}
}

func TestEquationOneSandwich(t *testing.T) {
	// Paper Eq. (1): Theta(1/phi) <= tmix <= Theta(1/phi^2). Verify the
	// bracket with explicit constants on small families: we use
	// tmix <= C * log(n/eps)/ (1-lambda2) and the Cheeger relation.
	rng := rand.New(rand.NewSource(6))
	families := []*graph.Graph{}
	g1 := mustClique(t, 16)
	g2, err := graph.Cycle(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := graph.RandomRegular(16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	families = append(families, g1, g2, g3)
	for _, g := range families {
		tm, err := MixingTime(g, 1000000)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		phi, err := ConductanceBrute(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		logn := math.Log(float64(g.N()))
		// Generous constants: c/phi <= tmix * C log n and tmix <= C log n / phi^2.
		if float64(tm) < 0.05/phi/(4*logn) {
			t.Errorf("%s: tmix=%d too small vs 1/phi=%v", g.Name(), tm, 1/phi)
		}
		if float64(tm) > 40*logn/(phi*phi) {
			t.Errorf("%s: tmix=%d too large vs 1/phi^2=%v", g.Name(), tm, 1/(phi*phi))
		}
	}
}

func TestTVDistance(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	if d := TVDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("TV = %v, want 0.5", d)
	}
	if d := TVDistance(a, a); d != 0 {
		t.Fatalf("TV(a,a) = %v", d)
	}
}
