// Package spectral computes the random-walk quantities that the paper's
// analysis is written in terms of: the lazy random-walk operator of
// Section 2, its stationary distribution, the mixing time tmix (with the
// paper's accuracy 1/(2n) under the max norm), the second eigenvalue of the
// walk, and conductance estimates (exact for tiny graphs, Cheeger bounds and
// sweep cuts in general). Equation (1) of the paper,
// Theta(1/phi) <= tmix <= Theta(1/phi^2), is validated in the tests.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wcle/internal/graph"
)

// DefaultEps returns the paper's mixing accuracy 1/(2n).
func DefaultEps(n int) float64 { return 1 / (2 * float64(n)) }

// Walk is the lazy random-walk operator on a graph: stay with probability
// 1/2, otherwise move to a uniformly random neighbor (Section 2).
type Walk struct {
	g *graph.Graph
}

// NewWalk returns the lazy walk operator for g.
func NewWalk(g *graph.Graph) *Walk { return &Walk{g: g} }

// Step applies one step of the lazy walk: dst = P * src. dst and src must
// have length g.N() and must not alias.
func (w *Walk) Step(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for u := 0; u < w.g.N(); u++ {
		mass := src[u]
		if mass == 0 {
			continue
		}
		dst[u] += mass / 2
		d := w.g.Degree(u)
		if d == 0 {
			dst[u] += mass / 2
			continue
		}
		share := mass / (2 * float64(d))
		for p := 0; p < d; p++ {
			dst[w.g.NeighborAt(u, p)] += share
		}
	}
}

// Stationary returns the stationary distribution pi*(v) = deg(v)/(2m).
func (w *Walk) Stationary() []float64 {
	pi := make([]float64, w.g.N())
	denom := 2 * float64(w.g.M())
	for v := range pi {
		pi[v] = float64(w.g.Degree(v)) / denom
	}
	return pi
}

// InfNormDiff returns ||a - b||_inf.
func InfNormDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// TVDistance returns the total-variation distance between distributions.
func TVDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / 2
}

// ErrNoMix is returned when the walk does not reach the requested accuracy
// within the step budget (e.g. on a disconnected graph).
var ErrNoMix = errors.New("spectral: walk did not mix within the step budget")

// MixFrom returns the smallest t such that the lazy walk started at src is
// within eps of stationarity in the max norm, searching up to tmax steps.
func (w *Walk) MixFrom(src int, eps float64, tmax int) (int, error) {
	n := w.g.N()
	if src < 0 || src >= n {
		return 0, fmt.Errorf("spectral: start node %d out of range", src)
	}
	pi := w.Stationary()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[src] = 1
	if InfNormDiff(cur, pi) <= eps {
		return 0, nil
	}
	for t := 1; t <= tmax; t++ {
		w.Step(next, cur)
		cur, next = next, cur
		if InfNormDiff(cur, pi) <= eps {
			return t, nil
		}
	}
	return 0, fmt.Errorf("%w (eps=%v, tmax=%d, start=%d)", ErrNoMix, eps, tmax, src)
}

// MixingTimeSampled returns the maximum MixFrom over the given start nodes.
// The paper's tmix maximizes over all starts; sampling gives a lower
// estimate that is exact on vertex-transitive graphs (all our structured
// families) and tight in practice on random regular graphs.
func MixingTimeSampled(g *graph.Graph, eps float64, tmax int, starts []int) (int, error) {
	if len(starts) == 0 {
		return 0, errors.New("spectral: no start nodes given")
	}
	w := NewWalk(g)
	var worst int
	for _, s := range starts {
		t, err := w.MixFrom(s, eps, tmax)
		if err != nil {
			return 0, err
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// MixingTime returns the exact tmix (max over every start node) at the
// paper's accuracy 1/(2n). It costs O(n * (n+m) * tmix); intended for
// n up to a few thousand on well-connected graphs.
func MixingTime(g *graph.Graph, tmax int) (int, error) {
	starts := make([]int, g.N())
	for i := range starts {
		starts[i] = i
	}
	return MixingTimeSampled(g, DefaultEps(g.N()), tmax, starts)
}

// Lambda2 computes the second-largest eigenvalue of the lazy walk operator
// by power iteration on the symmetrized operator with the known top
// eigenvector deflated. The lazy walk's spectrum lies in [0,1], so the
// deflated power iteration converges to lambda_2 itself.
func Lambda2(g *graph.Graph, maxIters int, tol float64) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("spectral: need at least 2 nodes")
	}
	if g.M() == 0 {
		return 0, errors.New("spectral: graph has no edges")
	}
	// Top eigenvector of S = D^{1/2} P D^{-1/2}: v1(v) ~ sqrt(deg v).
	v1 := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		v1[v] = math.Sqrt(float64(g.Degree(v)))
		norm += v1[v] * v1[v]
	}
	norm = math.Sqrt(norm)
	for v := range v1 {
		v1[v] /= norm
	}
	// Deterministic start vector orthogonalized against v1.
	x := make([]float64, n)
	for v := range x {
		// A fixed pseudo-random-ish but deterministic pattern avoids
		// starting orthogonal to the second eigenvector on symmetric graphs.
		x[v] = math.Sin(float64(3*v+1)) + 0.25*math.Cos(float64(7*v+2))
	}
	deflate := func(y []float64) {
		var dot float64
		for v := range y {
			dot += y[v] * v1[v]
		}
		for v := range y {
			y[v] -= dot * v1[v]
		}
	}
	normalize := func(y []float64) float64 {
		var s float64
		for _, t := range y {
			s += t * t
		}
		s = math.Sqrt(s)
		if s > 0 {
			for v := range y {
				y[v] /= s
			}
		}
		return s
	}
	applyS := func(dst, src []float64) {
		// S = 1/2 I + 1/2 D^{-1/2} A D^{-1/2}
		for v := range dst {
			dst[v] = src[v] / 2
		}
		for u := 0; u < n; u++ {
			du := math.Sqrt(float64(g.Degree(u)))
			if du == 0 {
				continue
			}
			for p := 0; p < g.Degree(u); p++ {
				v := g.NeighborAt(u, p)
				dv := math.Sqrt(float64(g.Degree(v)))
				dst[v] += src[u] / (2 * du * dv)
			}
		}
	}
	deflate(x)
	if normalize(x) == 0 {
		return 0, errors.New("spectral: degenerate start vector")
	}
	y := make([]float64, n)
	prev := 0.0
	for it := 0; it < maxIters; it++ {
		applyS(y, x)
		deflate(y)
		lam := normalize(y)
		x, y = y, x
		if it > 8 && math.Abs(lam-prev) < tol {
			return lam, nil
		}
		prev = lam
	}
	return prev, nil
}

// CheegerBounds converts the lazy walk's lambda_2 into the discrete Cheeger
// sandwich on conductance: 1-lambda2 <= phi <= 2*sqrt(1-lambda2).
// (For the non-lazy normalized gap g = 2(1-lambda2_lazy): g/2 <= phi <=
// sqrt(2g).)
func CheegerBounds(lambda2 float64) (lo, hi float64) {
	gap := 1 - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap, 2 * math.Sqrt(gap)
}

// maxBruteNodes bounds the exact conductance enumeration.
const maxBruteNodes = 22

// ConductanceBrute computes the exact conductance phi(G) by enumerating
// every cut. Exponential; restricted to n <= 22.
func ConductanceBrute(g *graph.Graph) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("spectral: need at least 2 nodes")
	}
	if n > maxBruteNodes {
		return 0, fmt.Errorf("spectral: brute-force conductance limited to n <= %d, got %d", maxBruteNodes, n)
	}
	if g.M() == 0 {
		return 0, errors.New("spectral: graph has no edges")
	}
	best := math.Inf(1)
	inSet := make([]bool, n)
	// Fix node 0 out of the set to halve the enumeration (cuts are
	// symmetric under complement).
	for mask := uint64(1); mask < 1<<(n-1); mask++ {
		for v := 1; v < n; v++ {
			inSet[v] = mask&(1<<(v-1)) != 0
		}
		phi := graph.CutConductance(g, inSet)
		if phi > 0 && phi < best {
			best = phi
		}
	}
	return best, nil
}

// SweepCut returns a conductance upper bound via the standard spectral
// sweep: order vertices by the (degree-normalized) second eigenvector and
// take the best prefix cut. Also returns the achieving set.
func SweepCut(g *graph.Graph, maxIters int, tol float64) (float64, []bool, error) {
	n := g.N()
	vec, err := secondEigenvector(g, maxIters, tol)
	if err != nil {
		return 0, nil, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vec[order[i]] > vec[order[j]] })
	inSet := make([]bool, n)
	var volS, cut int
	totalVol := 2 * g.M()
	best := math.Inf(1)
	bestK := -1
	for k := 0; k < n-1; k++ {
		v := order[k]
		inSet[v] = true
		volS += g.Degree(v)
		// Adding v flips its edges: edges to outside become cut edges,
		// edges to inside stop being cut edges.
		for p := 0; p < g.Degree(v); p++ {
			if inSet[g.NeighborAt(v, p)] {
				cut--
			} else {
				cut++
			}
		}
		minVol := volS
		if totalVol-volS < minVol {
			minVol = totalVol - volS
		}
		if minVol == 0 {
			continue
		}
		phi := float64(cut) / float64(minVol)
		if phi < best {
			best = phi
			bestK = k
		}
	}
	if bestK < 0 {
		return 0, nil, errors.New("spectral: sweep found no nontrivial cut")
	}
	bestSet := make([]bool, n)
	for k := 0; k <= bestK; k++ {
		bestSet[order[k]] = true
	}
	return best, bestSet, nil
}

// secondEigenvector runs the deflated power iteration and returns the
// degree-normalized eigenvector D^{-1/2} v2 used for sweep cuts.
func secondEigenvector(g *graph.Graph, maxIters int, tol float64) ([]float64, error) {
	n := g.N()
	if n < 2 || g.M() == 0 {
		return nil, errors.New("spectral: need at least 2 nodes and 1 edge")
	}
	v1 := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		v1[v] = math.Sqrt(float64(g.Degree(v)))
		norm += v1[v] * v1[v]
	}
	norm = math.Sqrt(norm)
	for v := range v1 {
		v1[v] /= norm
	}
	x := make([]float64, n)
	for v := range x {
		x[v] = math.Sin(float64(3*v+1)) + 0.25*math.Cos(float64(7*v+2))
	}
	y := make([]float64, n)
	for it := 0; it < maxIters; it++ {
		// Deflate, normalize.
		var dot float64
		for v := range x {
			dot += x[v] * v1[v]
		}
		var s float64
		for v := range x {
			x[v] -= dot * v1[v]
			s += x[v] * x[v]
		}
		s = math.Sqrt(s)
		if s == 0 {
			return nil, errors.New("spectral: degenerate iteration")
		}
		for v := range x {
			x[v] /= s
		}
		// y = S x
		for v := range y {
			y[v] = x[v] / 2
		}
		for u := 0; u < n; u++ {
			du := math.Sqrt(float64(g.Degree(u)))
			if du == 0 {
				continue
			}
			for p := 0; p < g.Degree(u); p++ {
				v := g.NeighborAt(u, p)
				dv := math.Sqrt(float64(g.Degree(v)))
				y[v] += x[u] / (2 * du * dv)
			}
		}
		diff := 0.0
		for v := range y {
			d := math.Abs(y[v] - x[v])
			if d > diff {
				diff = d
			}
		}
		copy(x, y)
		if it > 8 && diff < tol {
			break
		}
	}
	out := make([]float64, n)
	for v := range out {
		d := math.Sqrt(float64(g.Degree(v)))
		if d == 0 {
			out[v] = 0
			continue
		}
		out[v] = x[v] / d
	}
	return out, nil
}
