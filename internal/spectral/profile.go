package spectral

import (
	"errors"

	"wcle/internal/graph"
)

// This file is the one-call spectral characterization used by the service
// layer's graph registry (internal/serve): everything the paper's cost
// bounds are written in terms of, computed once per graph and cached. The
// quantities are expensive (tmix is O(starts * (n+m) * tmix) walk steps)
// while the election itself is graph-reusable, so callers memoize the
// Profile and surface it in responses to let clients predict an election's
// O(tmix log^2 n) round cost before paying for a run.

// ProfileOptions bounds the work ComputeProfile performs. The zero value
// selects sensible defaults for registry-sized graphs.
type ProfileOptions struct {
	// ExactStartLimit is the largest n for which tmix maximizes over every
	// start node (the paper's exact definition). Larger graphs sample
	// SampleStarts evenly spread starts instead, which is exact on
	// vertex-transitive families and a tight lower estimate in practice.
	// 0 means 256.
	ExactStartLimit int
	// SampleStarts is the number of sampled start nodes beyond the exact
	// limit. 0 means 16.
	SampleStarts int
	// Tmax caps the walk-step search for tmix. 0 means 2n^2 + 1000, which
	// covers even the Theta(n^2)-mixing cycle at the paper's accuracy.
	Tmax int
	// PowerIters and Tol bound the lambda_2 power iteration. 0 means
	// 20000 iterations at tolerance 1e-12.
	PowerIters int
	Tol        float64
	// MaxWork, when positive, caps the total profile cost in walk-step
	// units (one unit ~ one O(n+m) sparse operator application): Tmax and
	// PowerIters are clamped so starts*Tmax*(n+m) and PowerIters*(n+m)
	// each stay within it. A graph whose walk cannot mix within the
	// clamped budget gets a deterministic ErrNoMix instead of an
	// effectively unbounded computation — the service layer relies on
	// this to keep one badly-conditioned graph (a million-node cycle has
	// tmix = Theta(n^2)) from wedging a worker forever.
	MaxWork int64
}

func (o ProfileOptions) withDefaults(n int) ProfileOptions {
	if o.ExactStartLimit <= 0 {
		o.ExactStartLimit = 256
	}
	if o.SampleStarts <= 0 {
		o.SampleStarts = 16
	}
	if o.Tmax <= 0 {
		o.Tmax = 2*n*n + 1000
	}
	if o.PowerIters <= 0 {
		o.PowerIters = 20000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	return o
}

// Profile is the cached spectral characterization of one graph.
type Profile struct {
	N int `json:"n"`
	M int `json:"m"`
	// Tmix is the lazy-walk mixing time at the paper's accuracy 1/(2n);
	// TmixExact reports whether it maximized over every start node or over
	// a sampled subset.
	Tmix      int  `json:"tmix"`
	TmixExact bool `json:"tmix_exact"`
	// Lambda2 is the second eigenvalue of the lazy walk operator.
	Lambda2 float64 `json:"lambda2"`
	// CheegerLo/Hi sandwich the conductance: 1-lambda2 <= phi <=
	// 2 sqrt(1-lambda2) (Equation (1) territory).
	CheegerLo float64 `json:"cheeger_lo"`
	CheegerHi float64 `json:"cheeger_hi"`
}

// sampleStarts returns k deterministic start nodes spread evenly over
// [0, n): profile results must not depend on who asked first.
func sampleStarts(n, k int) []int {
	if k >= n {
		k = n
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		s := i * n / k
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// ComputeProfile computes the full spectral profile of g. It is a pure
// deterministic function of (g, opts) — the property the registry's
// memoization relies on.
func ComputeProfile(g *graph.Graph, opts ProfileOptions) (*Profile, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("spectral: profile needs at least 2 nodes")
	}
	if g.M() == 0 {
		return nil, errors.New("spectral: profile needs at least 1 edge")
	}
	opts = opts.withDefaults(n)
	p := &Profile{N: n, M: g.M()}

	var starts []int
	if n <= opts.ExactStartLimit {
		p.TmixExact = true
		starts = make([]int, n)
		for i := range starts {
			starts[i] = i
		}
	} else {
		starts = sampleStarts(n, opts.SampleStarts)
	}
	if opts.MaxWork > 0 {
		perApply := int64(n + g.M())
		if budget := opts.MaxWork / (perApply * int64(len(starts))); int64(opts.Tmax) > budget {
			opts.Tmax = int(budget)
			if opts.Tmax < 1 {
				opts.Tmax = 1
			}
		}
		if budget := opts.MaxWork / perApply; int64(opts.PowerIters) > budget {
			opts.PowerIters = int(budget)
			if opts.PowerIters < 16 {
				opts.PowerIters = 16
			}
		}
	}
	tmix, err := MixingTimeSampled(g, DefaultEps(n), opts.Tmax, starts)
	if err != nil {
		return nil, err
	}
	p.Tmix = tmix

	lam, err := Lambda2(g, opts.PowerIters, opts.Tol)
	if err != nil {
		return nil, err
	}
	p.Lambda2 = lam
	p.CheegerLo, p.CheegerHi = CheegerBounds(lam)
	return p, nil
}
