package wcle_test

import (
	"testing"

	"wcle"
	"wcle/internal/experiments"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/wire"
)

// benchExperiment runs one reproduction experiment per iteration with a
// fresh suite (no cross-iteration caching), so ns/op is the true cost of
// regenerating the table. The quick regime keeps `go test -bench=.`
// tractable; cmd/benchsuite runs the full regime.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := wcle.RunExperiment(id, 42, true)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "table-rows")
}

// One benchmark per experiment of DESIGN.md section 3. Each regenerates the
// corresponding EXPERIMENTS.md table.

func BenchmarkE1MessageScaling(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2TimeScaling(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3ContenderConcentration(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4UniqueLeader(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5GuessDouble(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6MessageModes(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7Explicit(b *testing.B)               { benchExperiment(b, "E7") }
func BenchmarkE8LowerBoundGraph(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9InterCliqueDiscovery(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10BudgetedElection(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11BroadcastST(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12Dumbbell(b *testing.B)              { benchExperiment(b, "E12") }
func BenchmarkE13KnownTmix(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkE14Ablations(b *testing.B)             { benchExperiment(b, "E14") }
func BenchmarkE15FaultResilience(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Throughput(b *testing.B)            { benchExperiment(b, "E16") }

// Micro-benchmarks of the building blocks, with model-level custom metrics.

func BenchmarkElectExpander128(b *testing.B) {
	g, err := wcle.NewRandomRegular(128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

func BenchmarkElectClique64(b *testing.B) {
	g, err := wcle.NewClique(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

// Tracer overhead: the same expander election with no tracer (the nil
// fast path every untraced run takes — this must stay indistinguishable
// from BenchmarkElectExpander128) and with the always-on flight ring the
// cluster runtimes attach (a bounded mutex push per round span).
func benchElectTraced(b *testing.B, tr *obs.Tracer) {
	g, err := wcle.NewRandomRegular(128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i), Tracer: tr}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Emitted()), "trace-events")
}

func BenchmarkElectTracerDisabled(b *testing.B) {
	benchElectTraced(b, nil)
}

func BenchmarkElectTracerFlightRing(b *testing.B) {
	benchElectTraced(b, obs.New(obs.NewRing(0), 0))
}

func BenchmarkElectConcurrentEngine(b *testing.B) {
	g, err := wcle.NewRandomRegular(128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i), Concurrent: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodMax256(b *testing.B) {
	g, err := wcle.NewRandomRegular(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.FloodMax(g, int64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

func BenchmarkPushPull256(b *testing.B) {
	g, err := wcle.NewRandomRegular(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := wcle.PushPull(g, wcle.PushPullOptions{Rumor: 7, Seed: int64(i), Horizon: 200})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("push-pull did not complete")
		}
	}
}

func BenchmarkMixingTimeHypercube256(b *testing.B) {
	g, err := wcle.NewHypercube(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var tm int
	for i := 0; i < b.N; i++ {
		v, err := wcle.MixingTimeSampled(g, 1_000_000, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		tm = v
	}
	b.ReportMetric(float64(tm), "tmix-steps")
}

func BenchmarkLowerBoundConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := wcle.NewLowerBoundGraph(1024, 1.0/196, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Cluster wire hot paths: every cross-shard envelope goes through the
// codec once per side per round, and every large data frame may go
// through flate. These pin the per-envelope and per-frame costs the
// cluster runtime pays.

// benchFlushPayload builds one realistic per-(peer, round) flush: a
// piggybacked data-frame header followed by count token envelopes, the
// shape the plane's writeRound produces every round.
func benchFlushPayload(b *testing.B, count int) []byte {
	b.Helper()
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		b.Fatal(err)
	}
	buf := wire.AppendDataHeader(nil, wire.DataHeader{
		Epoch: 3, Round: 17, Flag: wire.ChunkFinalNext, Next: 18, Count: count,
	})
	for i := 0; i < count; i++ {
		buf, err = wire.AppendEnvelope(buf, wire.Envelope{
			Due: 18, To: i % 64, Port: i % 8, From: -1,
			Msg: c.Token(protocol.ID(1000+i), i%64, 17, i%8),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return buf
}

func BenchmarkClusterFlushEncode(b *testing.B) {
	const count = 64
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = benchFlushPayloadReuse(b, buf[:0], count)
	}
	b.SetBytes(int64(len(buf)))
}

// benchFlushPayloadReuse is the append-onto-buf variant the encoder
// benchmark iterates, mirroring the plane's buffer reuse.
func benchFlushPayloadReuse(b *testing.B, buf []byte, count int) []byte {
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		b.Fatal(err)
	}
	buf = wire.AppendDataHeader(buf, wire.DataHeader{
		Epoch: 3, Round: 17, Flag: wire.ChunkFinalNext, Next: 18, Count: count,
	})
	for i := 0; i < count; i++ {
		buf, err = wire.AppendEnvelope(buf, wire.Envelope{
			Due: 18, To: i % 64, Port: i % 8, From: -1,
			Msg: c.Token(protocol.ID(1000+i), i%64, 17, i%8),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return buf
}

func BenchmarkClusterFlushDecode(b *testing.B) {
	payload := benchFlushPayload(b, 64)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, rest, err := wire.DecodeDataHeader(payload)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < h.Count; j++ {
			var e wire.Envelope
			e, rest, err = wire.DecodeEnvelope(rest)
			if err != nil {
				b.Fatal(err)
			}
			_ = e
		}
	}
}

func BenchmarkClusterFrameCompress(b *testing.B) {
	payload := benchFlushPayload(b, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		z, ok := wire.AppendCompressed(nil, payload)
		if !ok {
			b.Fatal("flush payload did not compress")
		}
		ratio = float64(len(z)) / float64(len(payload))
	}
	b.ReportMetric(ratio, "compressed-ratio")
}

func BenchmarkClusterFrameDecompress(b *testing.B) {
	payload := benchFlushPayload(b, 256)
	z, ok := wire.AppendCompressed(nil, payload)
	if !ok {
		b.Fatal("flush payload did not compress")
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decompress(z, wire.MaxDataBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// Whole-election cluster benchmarks: the same clique election over a
// 3-shard loopback cluster, with the piggybacked barrier (default) and
// the legacy coordinator star, so the barrier saving shows up in ns/op.
func benchClusterElection(b *testing.B, opt wcle.LocalClusterOptions) {
	local, err := wcle.StartLocalClusterWith(3, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer local.Close()
	spec := wcle.ClusterJob{
		Graph:     wcle.GraphSpec{Family: "clique", N: 32, Seed: 5},
		Algorithm: wcle.DefaultAlgorithm(),
		Seed:      7,
	}
	b.ResetTimer()
	var barriers int64
	for i := 0; i < b.N; i++ {
		res, err := local.Elect(spec)
		if err != nil {
			b.Fatal(err)
		}
		barriers = res.Wire.Barriers / 3
	}
	b.ReportMetric(float64(barriers), "barriers")
}

func BenchmarkClusterElectionPiggyback(b *testing.B) {
	benchClusterElection(b, wcle.LocalClusterOptions{})
}

func BenchmarkClusterElectionLegacyBarrier(b *testing.B) {
	benchClusterElection(b, wcle.LocalClusterOptions{LegacyBarrier: true})
}

// Regenerate the full suite exactly once (the EXPERIMENTS.md pipeline) on
// the parallel harness, verifying every spec stays green under the bench
// harness.
func BenchmarkFullQuickSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := &experiments.Harness{Config: experiments.SuiteConfig{Seed: 42, Quick: true}}
		if _, err := h.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}
