package wcle_test

import (
	"testing"

	"wcle"
	"wcle/internal/experiments"
)

// benchExperiment runs one reproduction experiment per iteration with a
// fresh suite (no cross-iteration caching), so ns/op is the true cost of
// regenerating the table. The quick regime keeps `go test -bench=.`
// tractable; cmd/benchsuite runs the full regime.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := wcle.RunExperiment(id, 42, true)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "table-rows")
}

// One benchmark per experiment of DESIGN.md section 3. Each regenerates the
// corresponding EXPERIMENTS.md table.

func BenchmarkE1MessageScaling(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2TimeScaling(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3ContenderConcentration(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4UniqueLeader(b *testing.B)           { benchExperiment(b, "E4") }
func BenchmarkE5GuessDouble(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6MessageModes(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7Explicit(b *testing.B)               { benchExperiment(b, "E7") }
func BenchmarkE8LowerBoundGraph(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9InterCliqueDiscovery(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10BudgetedElection(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11BroadcastST(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12Dumbbell(b *testing.B)              { benchExperiment(b, "E12") }
func BenchmarkE13KnownTmix(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkE14Ablations(b *testing.B)             { benchExperiment(b, "E14") }
func BenchmarkE15FaultResilience(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16Throughput(b *testing.B)            { benchExperiment(b, "E16") }

// Micro-benchmarks of the building blocks, with model-level custom metrics.

func BenchmarkElectExpander128(b *testing.B) {
	g, err := wcle.NewRandomRegular(128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

func BenchmarkElectClique64(b *testing.B) {
	g, err := wcle.NewClique(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

func BenchmarkElectConcurrentEngine(b *testing.B) {
	g, err := wcle.NewRandomRegular(128, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(i), Concurrent: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodMax256(b *testing.B) {
	g, err := wcle.NewRandomRegular(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		res, err := wcle.FloodMax(g, int64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Metrics.Messages
	}
	b.ReportMetric(float64(msgs), "congest-msgs")
}

func BenchmarkPushPull256(b *testing.B) {
	g, err := wcle.NewRandomRegular(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := wcle.PushPull(g, 0, 7, int64(i), 200, false)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllInformed {
			b.Fatal("push-pull did not complete")
		}
	}
}

func BenchmarkMixingTimeHypercube256(b *testing.B) {
	g, err := wcle.NewHypercube(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var tm int
	for i := 0; i < b.N; i++ {
		v, err := wcle.MixingTimeSampled(g, 1_000_000, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		tm = v
	}
	b.ReportMetric(float64(tm), "tmix-steps")
}

func BenchmarkLowerBoundConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := wcle.NewLowerBoundGraph(1024, 1.0/196, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Regenerate the full suite exactly once (the EXPERIMENTS.md pipeline) on
// the parallel harness, verifying every spec stays green under the bench
// harness.
func BenchmarkFullQuickSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := &experiments.Harness{Config: experiments.SuiteConfig{Seed: 42, Quick: true}}
		if _, err := h.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}
