// Command electnode is one process of a wire-level election cluster: it
// hosts a contiguous shard of the graph's nodes and runs the registered
// election backends over real TCP against its peer processes
// (internal/cluster).
//
// Three modes, chosen by flags:
//
//   - coordinator (default): listen on -listen, admit -shards-1 workers,
//     then run the election described by the job flags and print the
//     merged outcome. With -serve it instead stays up and answers
//     submissions (-submit clients, electd -cluster) until SIGTERM.
//   - worker: join the coordinator at -bootstrap as shard -shard, serve
//     jobs until the coordinator shuts the session down.
//   - client: -submit <addr> sends the job flags to a running
//     coordinator and prints the outcome.
//
// Examples:
//
//	electnode -listen 127.0.0.1:7000 -shards 3 -graph clique -n 48 -algo kpprt -seed 7
//	electnode -bootstrap 127.0.0.1:7000 -shard 1 -listen 127.0.0.1:7001
//	electnode -bootstrap 127.0.0.1:7000 -shard 2 -listen 127.0.0.1:7002
//	electnode -listen 127.0.0.1:7000 -shards 3 -serve
//	electnode -submit 127.0.0.1:7000 -graph rr -n 64 -d 8 -algo gilbertrs18
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wcle"
	"wcle/internal/algo"
	"wcle/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "this process's listen address (port 0 picks an ephemeral port)")
		bootstrap = flag.String("bootstrap", "", "worker mode: the coordinator's address to join")
		shard     = flag.Int("shard", 0, "worker mode: this process's shard id (the coordinator is shard 0)")
		shards    = flag.Int("shards", 3, "coordinator mode: total process count, coordinator included")
		serve     = flag.Bool("serve", false, "coordinator mode: keep serving submissions instead of running one job")
		submit    = flag.String("submit", "", "client mode: submit the job flags to a running coordinator at this address")
		readyFile = flag.String("ready-file", "", "write the bound coordinator address to this file once listening")

		family   = flag.String("graph", "clique", "graph family: clique|cycle|path|hypercube|torus|rr")
		n        = flag.Int("n", 48, "target node count")
		d        = flag.Int("d", 8, "degree for rr")
		gseed    = flag.Int64("graph-seed", 1, "graph construction seed (port numbering)")
		algoName = flag.String("algo", wcle.DefaultAlgorithm(),
			fmt.Sprintf("election backend: %s", strings.Join(wcle.Algorithms(), "|")))
		seed    = flag.Int64("seed", 1, "election seed")
		horizon = flag.Int("horizon", 0, "floodmax decision round (0 = n)")
		hops    = flag.Int("hops", 0, "kpprt referee-sampling walk length (0 = auto)")
		resend  = flag.Int("resend", 0, "gilbertrs18 idempotent retransmissions")
		jsonOut = flag.Bool("json", false, "print the full merged result as JSON")
	)
	flag.Parse()

	if *bootstrap != "" && *submit != "" {
		return fmt.Errorf("-bootstrap (worker) and -submit (client) are mutually exclusive")
	}
	if *algoName != "" && !algo.Known(*algoName) {
		return fmt.Errorf("unknown algorithm %q (registered backends: %s)", *algoName, strings.Join(algo.Names(), ", "))
	}
	spec, err := buildJob(*family, *n, *d, *gseed, *algoName, *seed, *horizon, *hops, *resend)
	if err != nil {
		return err
	}

	switch {
	case *bootstrap != "":
		return runWorker(*bootstrap, *shard, *listen)
	case *submit != "":
		res, err := cluster.Submit(*submit, spec)
		if err != nil {
			return err
		}
		return printResult(res, *jsonOut)
	default:
		return runCoordinator(*listen, *shards, *serve, *readyFile, spec, *jsonOut)
	}
}

// buildJob assembles the JobSpec from the job flags.
func buildJob(family string, n, d int, gseed int64, algoName string, seed int64, horizon, hops, resend int) (cluster.JobSpec, error) {
	gs := wcle.GraphSpec{Family: family, Seed: gseed}
	switch family {
	case "clique", "cycle", "path":
		gs.N = n
	case "rr":
		gs.N, gs.D = n, d
	case "hypercube":
		for 1<<gs.Dim < n {
			gs.Dim++
		}
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		gs.Rows, gs.Cols = side, side
	default:
		return cluster.JobSpec{}, fmt.Errorf("unknown graph family %q", family)
	}
	return cluster.JobSpec{
		Graph:     gs,
		Algorithm: algoName,
		Seed:      seed,
		Horizon:   horizon,
		Hops:      hops,
		Resend:    resend,
	}, nil
}

// runWorker joins and serves until the session ends.
func runWorker(bootstrap string, shard int, listen string) error {
	w, err := cluster.NewWorker(cluster.WorkerConfig{Bootstrap: bootstrap, Shard: shard, Listen: listen})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "electnode: shard %d listening on %s, joined %s\n", shard, w.Addr(), bootstrap)
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err == nil {
			fmt.Fprintf(os.Stderr, "electnode: shard %d shut down cleanly\n", shard)
		}
		return err
	case <-sig:
		fmt.Fprintf(os.Stderr, "electnode: shard %d interrupted\n", shard)
		return nil
	}
}

// runCoordinator assembles the cluster, then either serves submissions
// (-serve) or runs the one job described by the flags.
func runCoordinator(listen string, shards int, serve bool, readyFile string, spec cluster.JobSpec, jsonOut bool) error {
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Listen: listen, Shards: shards})
	if err != nil {
		return err
	}
	defer coord.Shutdown()
	fmt.Fprintf(os.Stderr, "electnode: coordinator of %d shards listening on %s\n", shards, coord.Addr())
	if readyFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(coord.Addr()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, readyFile); err != nil {
			return err
		}
	}
	if serve {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "electnode: coordinator shutting the session down")
		coord.Shutdown()
		return nil
	}
	res, err := coord.Elect(spec)
	if err != nil {
		return err
	}
	coord.Shutdown()
	return printResult(res, jsonOut)
}

// printResult renders a merged result.
func printResult(res *cluster.Result, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	out := res.Outcome
	fmt.Printf("cluster: %d shards over %d nodes\n", res.Shards, res.N)
	fmt.Printf("algorithm: %s (explicit=%v)\n", out.Algorithm, out.Explicit)
	fmt.Printf("outcome: leaders=%v success=%v contenders=%d\n", out.Leaders, out.Success, out.Contenders)
	fmt.Printf("leaderRound=%d totalRounds=%d\n", out.LeaderRound, out.Rounds)
	fmt.Printf("messages=%d bits=%d deliveries=%d byKind=%v\n",
		out.Metrics.Messages, out.Metrics.Bits, out.Metrics.Deliveries, out.Metrics.ByKind)
	fmt.Printf("wire: frames=%d bytes=%d envelopes=%d barriers=%d\n",
		res.Wire.Frames, res.Wire.Bytes, res.Wire.Envelopes, res.Wire.Barriers)
	return nil
}
