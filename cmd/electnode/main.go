// Command electnode is one process of a wire-level election cluster: it
// hosts a contiguous shard of the graph's nodes and runs the registered
// election backends over real TCP against its peer processes
// (internal/cluster).
//
// Three modes, chosen by flags:
//
//   - coordinator (default): listen on -listen, admit -shards-1 workers,
//     then run the election described by the job flags and print the
//     merged outcome. With -serve it instead stays up and answers
//     submissions (-submit clients, electd -cluster) until SIGTERM. With
//     -supervise it runs the job as a leased election — workers
//     heartbeat, a crashed shard triggers an automatic re-election over
//     the survivors, and a restarted shard rejoins at the next epoch.
//   - worker: join the coordinator at -bootstrap as shard -shard, serve
//     jobs until the coordinator shuts the session down.
//   - client: -submit <addr> sends the job flags to a running
//     coordinator and prints the outcome.
//
// The fault flags (-drop, -delay-max, -crash-frac/-crash-round,
// -partition-*) attach a delivery-plane adversary to the job. Every
// plane they can express is shard-safe, so a faulty cluster run stays
// byte-identical to the in-process sim at the same seed.
//
// Session flags (coordinator only): -compress flate-compresses large
// data frames, -legacy-barrier forces the old frameReady/frameAdvance
// coordinator star instead of piggybacked round advancement. Both are
// negotiated at join time, so a cluster mixing old and new binaries
// degrades to the legacy uncompressed wire instead of failing.
//
// Examples:
//
//	electnode -listen 127.0.0.1:7000 -shards 3 -graph clique -n 48 -algo kpprt -seed 7
//	electnode -bootstrap 127.0.0.1:7000 -shard 1 -listen 127.0.0.1:7001
//	electnode -bootstrap 127.0.0.1:7000 -shard 2 -listen 127.0.0.1:7002
//	electnode -listen 127.0.0.1:7000 -shards 3 -serve
//	electnode -submit 127.0.0.1:7000 -graph rr -n 64 -d 8 -algo gilbertrs18 -drop 0.05
//	electnode -listen 127.0.0.1:7000 -shards 3 -supervise -graph clique -n 48 -algo kpprt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wcle"
	"wcle/internal/algo"
	"wcle/internal/cluster"
	"wcle/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "this process's listen address (port 0 picks an ephemeral port)")
		bootstrap = flag.String("bootstrap", "", "worker mode: the coordinator's address to join")
		shard     = flag.Int("shard", 0, "worker mode: this process's shard id (the coordinator is shard 0)")
		shards    = flag.Int("shards", 3, "coordinator mode: total process count, coordinator included")
		serve     = flag.Bool("serve", false, "coordinator mode: keep serving submissions instead of running one job")
		submit    = flag.String("submit", "", "client mode: submit the job flags to a running coordinator at this address")
		readyFile = flag.String("ready-file", "", "write the bound coordinator address to this file once listening")

		family   = flag.String("graph", "clique", "graph family: clique|cycle|path|hypercube|torus|rr")
		n        = flag.Int("n", 48, "target node count")
		d        = flag.Int("d", 8, "degree for rr")
		gseed    = flag.Int64("graph-seed", 1, "graph construction seed (port numbering)")
		algoName = flag.String("algo", wcle.DefaultAlgorithm(),
			fmt.Sprintf("election backend: %s", strings.Join(wcle.Algorithms(), "|")))
		seed    = flag.Int64("seed", 1, "election seed")
		horizon = flag.Int("horizon", 0, "floodmax decision round (0 = n)")
		hops    = flag.Int("hops", 0, "kpprt referee-sampling walk length (0 = auto)")
		resend  = flag.Int("resend", 0, "gilbertrs18 idempotent retransmissions")
		jsonOut = flag.Bool("json", false, "print the full merged result as JSON")

		drop          = flag.Float64("drop", 0, "fault plane: drop each send with this probability [0,1)")
		delayMax      = flag.Int("delay-max", 0, "fault plane: delay each send by uniform [0,max] extra rounds")
		crashFrac     = flag.Float64("crash-frac", 0, "fault plane: crash this fraction of nodes [0,1)")
		crashRound    = flag.Int("crash-round", 0, "fault plane: the round the sampled nodes crash at")
		partitionFrac = flag.Float64("partition-frac", 0, "fault plane: cut off a sampled minority of this fraction [0,1)")
		partitionFrom = flag.Int("partition-from", 0, "fault plane: first round of the partition")
		partitionTo   = flag.Int("partition-to", 0, "fault plane: first round after the heal (<= from never heals)")

		supervise = flag.Bool("supervise", false, "coordinator mode: supervise the job flags as a leased election — heartbeats, crash detection, automatic re-election — until SIGTERM")

		compress      = flag.Bool("compress", false, "coordinator mode: flate-compress large data frames (negotiated; falls back raw if a worker cannot)")
		legacyBarrier = flag.Bool("legacy-barrier", false, "coordinator mode: force the frameReady/frameAdvance coordinator star instead of piggybacked round advancement")

		debugAddr  = flag.String("debug-addr", "", "serve ops endpoints (/metrics /healthz /flightz /debug/pprof/) on this address")
		flightDump = flag.String("flight-dump", "", "dump the flight recorder (NDJSON) to this file on crash, re-election, or SIGQUIT")
		traceOut   = flag.String("trace", "", "stream this process's trace events to this NDJSON file (coordinator or worker)")
	)
	flag.Parse()

	if *bootstrap != "" && *submit != "" {
		return fmt.Errorf("-bootstrap (worker) and -submit (client) are mutually exclusive")
	}
	if *algoName != "" && !algo.Known(*algoName) {
		return fmt.Errorf("unknown algorithm %q (registered backends: %s)", *algoName, strings.Join(algo.Names(), ", "))
	}
	spec, err := buildJob(*family, *n, *d, *gseed, *algoName, *seed, *horizon, *hops, *resend)
	if err != nil {
		return err
	}
	spec.Fault = wcle.FaultSpec{
		Drop: *drop, DelayMax: *delayMax,
		CrashFrac: *crashFrac, CrashRound: *crashRound,
		PartitionFrac: *partitionFrac, PartitionFrom: *partitionFrom, PartitionTo: *partitionTo,
	}
	if err := spec.Fault.Validate(); err != nil {
		return err
	}

	sink, flushSink, err := openTraceSink(*traceOut)
	if err != nil {
		return err
	}
	defer flushSink()

	switch {
	case *bootstrap != "":
		return runWorker(*bootstrap, *shard, *listen, *debugAddr, *flightDump, sink)
	case *submit != "":
		res, err := cluster.Submit(*submit, spec)
		if err != nil {
			return err
		}
		return printResult(res, *jsonOut)
	default:
		cfg := cluster.CoordinatorConfig{
			Listen: *listen, Shards: *shards,
			Compress: *compress, LegacyBarrier: *legacyBarrier,
			TraceSink: sink,
		}
		return runCoordinator(cfg, *serve, *supervise, *readyFile, spec, *jsonOut, *debugAddr, *flightDump)
	}
}

// openTraceSink opens -trace's NDJSON stream; the returned flush closes
// it on the way out. A blank path yields a nil sink (tracing still feeds
// the always-on flight recorder).
func openTraceSink(path string) (obs.Sink, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("-trace: %w", err)
	}
	ws := obs.NewWriterSink(f)
	flush := func() {
		if err := ws.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "electnode: trace flush: %v\n", err)
		}
		f.Close()
	}
	return ws, flush, nil
}

// buildJob assembles the JobSpec from the job flags.
func buildJob(family string, n, d int, gseed int64, algoName string, seed int64, horizon, hops, resend int) (cluster.JobSpec, error) {
	gs := wcle.GraphSpec{Family: family, Seed: gseed}
	switch family {
	case "clique", "cycle", "path":
		gs.N = n
	case "rr":
		gs.N, gs.D = n, d
	case "hypercube":
		for 1<<gs.Dim < n {
			gs.Dim++
		}
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		gs.Rows, gs.Cols = side, side
	default:
		return cluster.JobSpec{}, fmt.Errorf("unknown graph family %q", family)
	}
	return cluster.JobSpec{
		Graph:     gs,
		Algorithm: algoName,
		Seed:      seed,
		Horizon:   horizon,
		Hops:      hops,
		Resend:    resend,
	}, nil
}

// runWorker joins and serves until the session ends.
func runWorker(bootstrap string, shard int, listen, debugAddr, flightDump string, sink obs.Sink) error {
	w, err := cluster.NewWorker(cluster.WorkerConfig{Bootstrap: bootstrap, Shard: shard, Listen: listen, TraceSink: sink})
	if err != nil {
		return err
	}
	m := workerMember(w, shard)
	if debugAddr != "" {
		if _, err := startDebugServer(debugAddr, m); err != nil {
			return err
		}
	}
	watchSIGQUIT(m, flightDump)
	fmt.Fprintf(os.Stderr, "electnode: shard %d listening on %s, joined %s\n", shard, w.Addr(), bootstrap)
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err == nil {
			fmt.Fprintf(os.Stderr, "electnode: shard %d shut down cleanly\n", shard)
		} else {
			dumpFlight(m, flightDump, "crash")
		}
		return err
	case <-sig:
		fmt.Fprintf(os.Stderr, "electnode: shard %d interrupted\n", shard)
		return nil
	}
}

// runCoordinator assembles the cluster, then serves submissions (-serve),
// supervises a leased election (-supervise), or runs the one job described
// by the flags.
func runCoordinator(cfg cluster.CoordinatorConfig, serve, supervise bool, readyFile string, spec cluster.JobSpec, jsonOut bool, debugAddr, flightDump string) error {
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		return err
	}
	defer coord.Shutdown()
	m := coordinatorMember(coord)
	if debugAddr != "" {
		if _, err := startDebugServer(debugAddr, m); err != nil {
			return err
		}
	}
	watchSIGQUIT(m, flightDump)
	fmt.Fprintf(os.Stderr, "electnode: coordinator of %d shards listening on %s\n", cfg.Shards, coord.Addr())
	if readyFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(coord.Addr()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, readyFile); err != nil {
			return err
		}
	}
	if supervise {
		return runSupervised(coord, spec, m, flightDump)
	}
	if serve {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "electnode: coordinator shutting the session down")
		coord.Shutdown()
		return nil
	}
	res, err := coord.Elect(spec)
	if err != nil {
		return err
	}
	coord.Shutdown()
	return printResult(res, jsonOut)
}

// runSupervised runs the job under supervision: elect, lease, monitor,
// re-elect on crashes and rejoins, printing one line per event, until
// SIGTERM stops the supervision cleanly.
func runSupervised(coord *cluster.Coordinator, spec cluster.JobSpec, m member, flightDump string) error {
	sup, err := coord.Supervise(cluster.SuperviseConfig{
		Spec: spec,
		OnEvent: func(ev cluster.Event) {
			switch ev.Kind {
			case cluster.EventLease:
				fmt.Printf("lease: epoch=%d leader=%d shard=%d\n", ev.Epoch, ev.Leader, ev.LeaderShard)
			case cluster.EventDeath:
				fmt.Printf("death: epoch=%d shard=%d err=%v\n", ev.Epoch, ev.Shard, ev.Err)
				dumpFlight(m, flightDump, "re-election")
			case cluster.EventRejoin:
				fmt.Printf("rejoin: epoch=%d shard=%d\n", ev.Epoch, ev.Shard)
			}
		},
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "electnode: stopping the supervision")
			sup.Stop()
		case <-done:
		}
	}()
	reigns, err := sup.Wait()
	close(done)
	for _, r := range reigns {
		fmt.Printf("reign: epoch=%d leader=%d shard=%d members=%d elect=%s recover=%s\n",
			r.Epoch, r.Leader, r.LeaderShard, len(r.Result.PerNodeMessages), r.ElectWall.Round(time.Millisecond), r.RecoverWall.Round(time.Millisecond))
	}
	return err
}

// printResult renders a merged result.
func printResult(res *cluster.Result, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	out := res.Outcome
	fmt.Printf("cluster: %d shards over %d nodes\n", res.Shards, res.N)
	fmt.Printf("algorithm: %s (explicit=%v)\n", out.Algorithm, out.Explicit)
	fmt.Printf("outcome: leaders=%v success=%v contenders=%d\n", out.Leaders, out.Success, out.Contenders)
	fmt.Printf("leaderRound=%d totalRounds=%d\n", out.LeaderRound, out.Rounds)
	fmt.Printf("messages=%d bits=%d deliveries=%d byKind=%v\n",
		out.Metrics.Messages, out.Metrics.Bits, out.Metrics.Deliveries, out.Metrics.ByKind)
	fmt.Printf("wire: frames=%d bytes=%d envelopes=%d barriers=%d barrier_frames=%d\n",
		res.Wire.Frames, res.Wire.Bytes, res.Wire.Envelopes, res.Wire.Barriers, res.Wire.BarrierFrames)
	if res.Wire.CompressedFrames > 0 {
		fmt.Printf("compression: compressed_frames=%d raw_bytes=%d compressed_bytes=%d\n",
			res.Wire.CompressedFrames, res.Wire.RawBytes, res.Wire.CompressedBytes)
	}
	return nil
}
