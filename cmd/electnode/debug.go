package main

// The ops surface of one cluster member: -debug-addr serves
// Prometheus-style /metrics (wire stats, fault counters, round-span
// timings from the flight recorder), /healthz, /flightz (a live NDJSON
// snapshot of the flight recorder), and net/http/pprof under
// /debug/pprof/. -flight-dump writes the flight recorder to a file on
// crash, re-election, or SIGQUIT.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"wcle/internal/cluster"
	"wcle/internal/obs"
)

// member is the side of the cluster a debug server observes: coordinator
// or worker, unified as accessors.
type member struct {
	role   string // "coordinator" | "worker"
	shard  int
	flight *obs.Ring
	tracer *obs.Tracer
	stats  func() cluster.SessionStats
}

func coordinatorMember(c *cluster.Coordinator) member {
	return member{role: "coordinator", shard: 0, flight: c.Flight(), tracer: c.Tracer(), stats: c.Stats}
}

func workerMember(w *cluster.Worker, shard int) member {
	return member{role: "worker", shard: shard, flight: w.Flight(), tracer: w.Tracer(), stats: w.Stats}
}

// startDebugServer binds addr and serves the ops endpoints until the
// process exits. Returns the bound address.
func startDebugServer(addr string, m member) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeNodeMetrics(w, m)
	})
	mux.HandleFunc("/flightz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = m.flight.WriteNDJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	fmt.Fprintf(os.Stderr, "electnode: debug endpoints on http://%s (/metrics /healthz /flightz /debug/pprof/)\n", ln.Addr())
	return ln.Addr().String(), nil
}

// writeNodeMetrics renders this member's session accounting in Prometheus
// exposition format.
func writeNodeMetrics(w http.ResponseWriter, m member) {
	s := m.stats()
	fmt.Fprintf(w, "# electnode ops metrics (%s, shard %d)\n", m.role, m.shard)
	fmt.Fprintf(w, "electnode_shard %d\n", m.shard)
	fmt.Fprintf(w, "electnode_jobs_total %d\n", s.Jobs)
	fmt.Fprintf(w, "electnode_job_errors_total %d\n", s.JobErrors)
	fmt.Fprintf(w, "electnode_wire_frames_total %d\n", s.Wire.Frames)
	fmt.Fprintf(w, "electnode_wire_bytes_total %d\n", s.Wire.Bytes)
	fmt.Fprintf(w, "electnode_wire_envelopes_total %d\n", s.Wire.Envelopes)
	fmt.Fprintf(w, "electnode_wire_barriers_total %d\n", s.Wire.Barriers)
	fmt.Fprintf(w, "electnode_wire_barrier_frames_total %d\n", s.Wire.BarrierFrames)
	fmt.Fprintf(w, "electnode_messages_total %d\n", s.Messages)
	fmt.Fprintf(w, "electnode_fault_drops_total %d\n", s.FaultDrops)
	fmt.Fprintf(w, "electnode_fault_delays_total %d\n", s.Delayed)
	fmt.Fprintf(w, "electnode_fault_mutations_total %d\n", s.Mutated)
	fmt.Fprintf(w, "electnode_busy_rounds_total %d\n", s.BusyRounds)
	fmt.Fprintf(w, "electnode_trace_events_total %d\n", m.tracer.Emitted())
	fmt.Fprintf(w, "electnode_trace_dropped_total %d\n", m.flight.Dropped())
	fmt.Fprintf(w, "electnode_flight_events %d\n", m.flight.Len())
	// Round-span timings over the flight-recorder window (bounded, so
	// these are sliding sums, not lifetime totals).
	type agg struct {
		sec float64
		n   int64
	}
	spans := map[string]agg{}
	for _, ev := range m.flight.Snapshot() {
		if ev.Dur <= 0 {
			continue
		}
		k := ev.Cat + "/" + ev.Name
		a := spans[k]
		a.sec += float64(ev.Dur) / 1e9
		a.n++
		spans[k] = a
	}
	keys := make([]string, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := spans[k]
		fmt.Fprintf(w, "electnode_flight_span_seconds{span=%q} %.6f\n", k, a.sec)
		fmt.Fprintf(w, "electnode_flight_span_count{span=%q} %d\n", k, a.n)
	}
}

// dumpFlight writes the flight recorder to path, logging rather than
// failing: a dump is best-effort diagnostics on the way down.
func dumpFlight(m member, path, why string) {
	if path == "" {
		return
	}
	if err := m.flight.DumpFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "electnode: flight dump (%s) failed: %v\n", why, err)
		return
	}
	fmt.Fprintf(os.Stderr, "electnode: flight recorder dumped to %s (%s, %d events)\n", path, why, m.flight.Len())
}

// watchSIGQUIT dumps the flight recorder on every SIGQUIT until the
// process exits. (With the handler installed, SIGQUIT no longer kills the
// process — the dump file is the artifact instead.)
func watchSIGQUIT(m member, path string) {
	if path == "" {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			dumpFlight(m, path, "SIGQUIT")
		}
	}()
}
