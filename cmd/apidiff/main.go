// Command apidiff extracts the exported API surface of a Go package
// directory as a sorted, one-declaration-per-line text listing, and checks
// it against a committed baseline. CI runs the check against API.txt at
// the repository root, so any change to the facade's exported surface —
// a removed entry point, a changed signature, a new type — fails until the
// baseline is regenerated in the same change, making facade redesigns
// deliberate and reviewable in the diff of API.txt itself.
//
// Usage:
//
//	apidiff -dir . -write API.txt    # (re)record the baseline
//	apidiff -dir . -check API.txt    # exit 1 on any surface drift
//	apidiff -dir .                   # print the surface to stdout
//
// The surface covers exported package-level declarations of the
// non-test files: funcs, methods on exported receivers, types (with their
// full definition, so struct field and interface method changes count),
// consts, and vars. Deprecation comments are not part of the surface; the
// tool is syntax-only (go/parser, no type checking) and dependency-free.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "apidiff:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", ".", "package directory to extract the surface from")
	write := flag.String("write", "", "write the surface to this file")
	check := flag.String("check", "", "compare the surface against this baseline; exit 1 on drift")
	flag.Parse()

	surface, err := Surface(*dir)
	if err != nil {
		return err
	}
	text := strings.Join(surface, "\n") + "\n"
	switch {
	case *write != "":
		return os.WriteFile(*write, []byte(text), 0o644)
	case *check != "":
		baseline, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		plus, minus := diffLines(splitLines(string(baseline)), surface)
		if len(plus) == 0 && len(minus) == 0 {
			fmt.Printf("apidiff: %d declarations, no drift from %s\n", len(surface), *check)
			return nil
		}
		for _, l := range minus {
			fmt.Printf("- %s\n", l)
		}
		for _, l := range plus {
			fmt.Printf("+ %s\n", l)
		}
		return fmt.Errorf("exported surface of %s drifted from %s (%d removed/changed, %d added); if intended, regenerate with: go run ./cmd/apidiff -dir %s -write %s",
			*dir, *check, len(minus), len(plus), *dir, *check)
	default:
		fmt.Print(text)
		return nil
	}
}

// Surface extracts the sorted exported declaration lines of the package
// in dir (test files excluded).
func Surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return dedupe(lines), nil
}

// declLines renders one top-level declaration's exported parts.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		// Print the signature only: a FuncDecl without a body renders as
		// `func [recv] Name(params) results`.
		sig := &ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type}
		return []string{render(fset, sig)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, render(fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{s}}))
				}
			case *ast.ValueSpec:
				if exportedName(s.Names) {
					out = append(out, render(fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}}))
				}
			}
		}
		return out
	}
	return nil
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not part of the surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func exportedName(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// render prints a declaration as one line: printer output with every line
// trimmed and joined by "; " so multi-line struct and interface bodies
// stay diffable line-per-declaration.
func render(fset *token.FileSet, node interface{}) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, node); err != nil {
		return fmt.Sprintf("apidiff: render error: %v", err)
	}
	parts := splitLines(sb.String())
	for i, p := range parts {
		parts[i] = strings.Join(strings.Fields(p), " ")
	}
	return strings.Join(parts, "; ")
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func dedupe(sorted []string) []string {
	var out []string
	for _, l := range sorted {
		if len(out) == 0 || out[len(out)-1] != l {
			out = append(out, l)
		}
	}
	return out
}

// diffLines compares two sorted line sets: plus = in got only,
// minus = in want only.
func diffLines(want, got []string) (plus, minus []string) {
	i, j := 0, 0
	for i < len(want) && j < len(got) {
		switch {
		case want[i] == got[j]:
			i++
			j++
		case want[i] < got[j]:
			minus = append(minus, want[i])
			i++
		default:
			plus = append(plus, got[j])
			j++
		}
	}
	minus = append(minus, want[i:]...)
	plus = append(plus, got[j:]...)
	return plus, minus
}
