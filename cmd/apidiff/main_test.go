package main

import (
	"os"
	"strings"
	"testing"
)

// TestRootSurfaceMatchesBaseline makes the committed API.txt a tier-1
// gate, not just a CI job: any change to the root package's exported
// surface must regenerate the baseline in the same change.
func TestRootSurfaceMatchesBaseline(t *testing.T) {
	got, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile("../../API.txt")
	if err != nil {
		t.Fatal(err)
	}
	plus, minus := diffLines(splitLines(string(raw)), got)
	if len(plus) != 0 || len(minus) != 0 {
		t.Fatalf("exported surface drifted from API.txt.\nremoved/changed:\n  %s\nadded:\n  %s\nIf intended, regenerate with: go run ./cmd/apidiff -dir . -write API.txt",
			strings.Join(minus, "\n  "), strings.Join(plus, "\n  "))
	}
}

// TestDiffLines pins the sorted-merge diff used by -check.
func TestDiffLines(t *testing.T) {
	plus, minus := diffLines(
		[]string{"a", "b", "c"},
		[]string{"a", "c", "d"},
	)
	if len(plus) != 1 || plus[0] != "d" || len(minus) != 1 || minus[0] != "b" {
		t.Fatalf("diff = +%v -%v", plus, minus)
	}
}

// TestSurfaceExcludesUnexported: the tool's own package has no exported
// declarations beyond what main.go defines, and test files never count.
func TestSurfaceExcludesUnexported(t *testing.T) {
	got, err := Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got {
		if strings.Contains(l, "TestRootSurfaceMatchesBaseline") {
			t.Fatalf("test declarations leaked into the surface: %v", got)
		}
	}
	want := []string{"func Surface(dir string) ([]string, error)"}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("surface of cmd/apidiff = %v, want %v", got, want)
	}
}
