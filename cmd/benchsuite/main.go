// Command benchsuite runs the paper-reproduction suite (E1..E19, see
// DESIGN.md) on a parallel worker pool and renders the aggregate as the
// Markdown recorded in EXPERIMENTS.md.
//
// Trials fan out across -workers goroutines with deterministic per-trial
// seeds: the same configuration produces byte-identical -json output
// whatever the worker count. With -checkpoint, partial results are
// persisted as JSON and an interrupted suite resumes where it stopped.
//
// Examples:
//
//	benchsuite -quick                              # fast smoke regime, stdout
//	benchsuite -render EXPERIMENTS.md              # the full regime, rendered to a file
//	benchsuite -experiments E1,E8 -trials 4        # a subset, 4 trials per point
//	benchsuite -workers 16 -json results.json      # raw trial metrics as JSON
//	benchsuite -checkpoint ckpt.json               # resumable run
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"wcle/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick   = flag.Bool("quick", false, "small sizes and trial counts")
		seed    = flag.Int64("seed", 42, "suite seed")
		exps    = flag.String("experiments", "", "comma-separated experiment ids (default: all)")
		expOld  = flag.String("exp", "", "alias for -experiments")
		trials  = flag.Int("trials", 0, "override every experiment's per-point trial count (0 = spec defaults)")
		maxN    = flag.Int("n", 0, "cap graph sizes at n (0 = regime defaults)")
		workers = flag.Int("workers", runtime.NumCPU(), "worker-pool size for parallel trials")
		jsonOut = flag.String("json", "", "write raw trial metrics as canonical JSON to this file")
		render  = flag.String("render", "", "render the experiment tables as Markdown to this file (\"-\" = stdout)")
		out     = flag.String("out", "", "alias for -render")
		ckpt    = flag.String("checkpoint", "", "checkpoint file: loaded to resume, rewritten during the run")
	)
	flag.Parse()

	sel := *exps
	if sel == "" {
		sel = *expOld
	}
	var ids []string
	if sel != "" {
		ids = strings.Split(sel, ",")
	}
	cfg := experiments.SuiteConfig{Seed: *seed, Quick: *quick, Trials: *trials, MaxN: *maxN}
	h := &experiments.Harness{
		Config:         cfg,
		Workers:        *workers,
		CheckpointPath: *ckpt,
		Progress: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "benchsuite: "+format+"\n", args...)
		},
	}

	start := time.Now()
	res, err := h.Run(ids)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchsuite: suite done in %v on %d workers\n",
		time.Since(start).Round(time.Millisecond), *workers)

	if *jsonOut != "" {
		b, err := res.CanonicalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			return err
		}
	}

	dest := *render
	if dest == "" {
		dest = *out
	}
	w := os.Stdout
	if dest != "" && dest != "-" {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: close:", cerr)
			}
		}()
		w = f
	}
	return experiments.RenderSuite(w, cfg, ids, res, gitRevision())
}

// gitRevision pins the rendered document to the working tree's commit.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err != nil {
		return rev
	}
	for _, line := range strings.Split(string(status), "\n") {
		if len(line) < 4 {
			continue
		}
		// Only changes that enter the build (Go sources or module files)
		// make the pinned revision a lie — not docs or notes, and in
		// particular not the EXPERIMENTS.md this very render rewrites.
		path := strings.TrimSpace(line[3:])
		if strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "go.mod") || strings.HasSuffix(path, "go.sum") {
			return rev + "-dirty"
		}
	}
	return rev
}
