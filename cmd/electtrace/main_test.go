package main

import (
	"os"
	"path/filepath"
	"testing"

	"wcle/internal/cluster"
	"wcle/internal/obs"
	"wcle/internal/serve"
)

// TestAnalyzeClusterTrace drives the full path the tool exists for: a real
// wire-level cluster run over TCP, its flight-recorder events written as
// NDJSON, read back, and rendered by every analysis mode.
func TestAnalyzeClusterTrace(t *testing.T) {
	lc, err := cluster.StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	spec := cluster.JobSpec{
		Graph: serve.GraphSpec{Family: "rr", N: 48, D: 8, Seed: 1},
		Seed:  7,
	}
	if _, err := lc.Elect(spec); err != nil {
		t.Fatal(err)
	}

	evs := lc.TraceEvents()
	if len(evs) == 0 {
		t.Fatal("cluster run produced no trace events")
	}
	var wireSpans, jobSpans, kindInstants int
	for _, ev := range evs {
		switch {
		case ev.Cat == "cluster" && ev.Dur > 0:
			wireSpans++
		case ev.Cat == "job" && ev.Dur > 0:
			jobSpans++
		case ev.Cat == "kind":
			kindInstants++
		}
	}
	if wireSpans == 0 {
		t.Error("no cluster wire spans (wire-flush/drain) in the trace")
	}
	if jobSpans == 0 {
		t.Error("no job spans in the trace")
	}
	if kindInstants == 0 {
		t.Error("no per-kind message summaries in the trace")
	}

	path := filepath.Join(t.TempDir(), "cluster.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteNDJSON(f, evs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := obs.ReadNDJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip lost events: wrote %d, read %d", len(evs), len(back))
	}

	// Every renderer must handle a real multi-shard trace without error.
	if err := waterfall(back, 8); err != nil {
		t.Errorf("waterfall: %v", err)
	}
	if err := critical(back); err != nil {
		t.Errorf("critical: %v", err)
	}
	if err := kinds(back); err != nil {
		t.Errorf("kinds: %v", err)
	}
	chrome := filepath.Join(t.TempDir(), "cluster.json")
	cf, err := os.Create(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(cf, back); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(chrome); err != nil || st.Size() == 0 {
		t.Fatalf("chrome export empty: %v", err)
	}
}
