// Command electtrace analyzes the NDJSON traces emitted by electsim
// -trace, electnode -trace/-flight-dump, and electd: round-latency
// waterfalls, per-shard critical paths, message-kind breakdowns, and
// conversion to the Chrome trace-event format (load the result in
// chrome://tracing or https://ui.perfetto.dev).
//
// Examples:
//
//	electsim -graph rr -n 128 -seed 7 -trace run.ndjson
//	electtrace run.ndjson                    # round-latency waterfall
//	electtrace -mode critical run.ndjson     # where each shard spends its time
//	electtrace -mode kinds run.ndjson        # message kinds and fault events
//	electtrace -mode chrome -out run.json run.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"wcle/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode = flag.String("mode", "waterfall", "analysis: waterfall|critical|kinds|chrome")
		top  = flag.Int("top", 24, "waterfall: show this many slowest rounds")
		out  = flag.String("out", "", "chrome: output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: electtrace [-mode waterfall|critical|kinds|chrome] trace.ndjson")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := obs.ReadNDJSON(f)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no trace events", flag.Arg(0))
	}
	switch *mode {
	case "waterfall":
		return waterfall(evs, *top)
	case "critical":
		return critical(evs)
	case "kinds":
		return kinds(evs)
	case "chrome":
		w := os.Stdout
		if *out != "" {
			g, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer g.Close()
			w = g
		}
		return obs.WriteChromeTrace(w, evs)
	default:
		return fmt.Errorf("unknown mode %q (waterfall|critical|kinds|chrome)", *mode)
	}
}

// span keys are "cat/name" so sim compute and cluster wire-flush sort
// side by side without colliding.
func spanKey(ev obs.Ev) string { return ev.Cat + "/" + ev.Name }

func fdur(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }

// bar renders ns as a bar scaled so max fills width cells.
func bar(ns, max int64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(ns * int64(width) / max)
	if n == 0 && ns > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// waterfall renders the per-round latency waterfall: every round that
// carries spans gets one line per span, bars scaled to the slowest round.
// With more busy rounds than -top, only the slowest are shown (in round
// order), so long runs stay readable.
func waterfall(evs []obs.Ev, top int) error {
	header(evs)
	type roundAgg struct {
		round int64
		total int64
		spans []obs.Ev // in TS order
	}
	byRound := map[int64]*roundAgg{}
	for _, ev := range evs {
		if ev.Dur <= 0 || ev.Round < 0 {
			continue
		}
		ra := byRound[ev.Round]
		if ra == nil {
			ra = &roundAgg{round: ev.Round}
			byRound[ev.Round] = ra
		}
		ra.total += ev.Dur
		ra.spans = append(ra.spans, ev)
	}
	if len(byRound) == 0 {
		fmt.Println("no per-round spans in this trace")
		return nil
	}
	rounds := make([]*roundAgg, 0, len(byRound))
	for _, ra := range byRound {
		rounds = append(rounds, ra)
	}
	if len(rounds) > top {
		sort.Slice(rounds, func(i, j int) bool { return rounds[i].total > rounds[j].total })
		rounds = rounds[:top]
		fmt.Printf("showing the %d slowest of %d busy rounds\n", top, len(byRound))
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i].round < rounds[j].round })
	var max int64
	for _, ra := range rounds {
		for _, ev := range ra.spans {
			if ev.Dur > max {
				max = ev.Dur
			}
		}
	}
	for _, ra := range rounds {
		sort.SliceStable(ra.spans, func(i, j int) bool { return ra.spans[i].TS < ra.spans[j].TS })
		fmt.Printf("round %-8d total %s\n", ra.round, fdur(ra.total))
		for _, ev := range ra.spans {
			label := spanKey(ev)
			if ev.Shard != 0 {
				label = fmt.Sprintf("%s s%d", label, ev.Shard)
			}
			fmt.Printf("  %-22s %10s  %s\n", label, fdur(ev.Dur), bar(ev.Dur, max, 48))
		}
	}
	return nil
}

// critical renders, per shard, where the wall time went: span kinds
// sorted by total duration — the shard's critical path at a glance.
func critical(evs []obs.Ev) error {
	header(evs)
	type agg struct {
		total, max int64
		n          int64
	}
	shards := map[int]map[string]*agg{}
	for _, ev := range evs {
		if ev.Dur <= 0 {
			continue
		}
		m := shards[ev.Shard]
		if m == nil {
			m = map[string]*agg{}
			shards[ev.Shard] = m
		}
		a := m[spanKey(ev)]
		if a == nil {
			a = &agg{}
			m[spanKey(ev)] = a
		}
		a.total += ev.Dur
		a.n++
		if ev.Dur > a.max {
			a.max = ev.Dur
		}
	}
	if len(shards) == 0 {
		fmt.Println("no spans in this trace")
		return nil
	}
	ids := make([]int, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := shards[id]
		keys := make([]string, 0, len(m))
		var shardTotal int64
		for k, a := range m {
			keys = append(keys, k)
			shardTotal += a.total
		}
		sort.Slice(keys, func(i, j int) bool { return m[keys[i]].total > m[keys[j]].total })
		fmt.Printf("shard %d: %s across %d span kinds\n", id, fdur(shardTotal), len(keys))
		for _, k := range keys {
			a := m[k]
			pct := float64(a.total) * 100 / float64(shardTotal)
			fmt.Printf("  %-22s %10s  %5.1f%%  n=%-6d max=%s\n", k, fdur(a.total), pct, a.n, fdur(a.max))
		}
	}
	return nil
}

// kinds renders the end-of-run message-kind counters and the fault-event
// tally.
func kinds(evs []obs.Ev) error {
	header(evs)
	kindCount := map[string]int64{}
	faultCount := map[string]int64{}
	for _, ev := range evs {
		switch ev.Cat {
		case "kind":
			kindCount[ev.Name] += ev.Args["count"]
		case "fault":
			faultCount[ev.Name]++
		}
	}
	if len(kindCount) == 0 && len(faultCount) == 0 {
		fmt.Println("no kind or fault events in this trace")
		return nil
	}
	if len(kindCount) > 0 {
		var total, max int64
		names := make([]string, 0, len(kindCount))
		for k, c := range kindCount {
			names = append(names, k)
			total += c
			if c > max {
				max = c
			}
		}
		sort.Slice(names, func(i, j int) bool { return kindCount[names[i]] > kindCount[names[j]] })
		fmt.Printf("messages by kind (total %d):\n", total)
		for _, k := range names {
			c := kindCount[k]
			fmt.Printf("  %-14s %10d  %5.1f%%  %s\n", k, c, float64(c)*100/float64(total), bar(c, max, 40))
		}
	}
	if len(faultCount) > 0 {
		names := make([]string, 0, len(faultCount))
		for k := range faultCount {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Println("fault events:")
		for _, k := range names {
			fmt.Printf("  %-14s %10d\n", k, faultCount[k])
		}
	}
	return nil
}

// header prints the trace's envelope: event count, shard count, wall span.
func header(evs []obs.Ev) {
	minTS, maxTS := evs[0].TS, evs[0].TS
	shards := map[int]bool{}
	spans := 0
	for _, ev := range evs {
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if end := ev.TS + ev.Dur; end > maxTS {
			maxTS = end
		}
		shards[ev.Shard] = true
		if ev.Dur > 0 {
			spans++
		}
	}
	fmt.Printf("trace: %d events (%d spans) over %d shard(s), wall %s\n",
		len(evs), spans, len(shards), fdur(maxTS-minTS))
}
