// Command electd is the long-running election daemon: an HTTP/JSON service
// that runs batch leader elections (internal/serve on top of the algo
// backend registry's sharded batch engine) against a registry of named
// graphs with memoized spectral profiles. Each submitted point may name
// its election backend ("algorithm": gilbertrs18, floodmax, or kpprt);
// per-backend election counters are exported at /metrics.
//
// API (see DESIGN.md section 5 for the wire contract):
//
//	POST /v1/graphs          register a named graph (family+params or edges)
//	GET  /v1/graphs          list registered graphs
//	GET  /v1/graphs/{name}   graph info + cached spectral profile
//	POST /v1/elections       submit a batch job (202; 429 when the queue is full)
//	GET  /v1/elections/{id}  job status, deterministic result, timing
//	GET  /healthz            liveness (503 while draining)
//	GET  /metrics            Prometheus text ops metrics
//	GET  /flightz            flight-recorder trace snapshot (NDJSON, electtrace-readable)
//
// With -cluster, electd becomes the HTTP face of a wire-level election
// cluster: every election is dispatched to a running cmd/electnode
// coordinator instead of the in-process engine, with the same per-trial
// seeds — so a job's result is byte-identical wherever it ran (fault
// planes are rejected in this mode: the wire runs perfect delivery only).
//
// Examples:
//
//	electd -addr 127.0.0.1:8080
//	electd -addr 127.0.0.1:0 -ready-file /tmp/electd.addr   # ephemeral port
//	electd -graphs graphs.json -workers 2 -queue 64
//	electd -cluster 127.0.0.1:7000
//
// On SIGTERM/SIGINT the daemon drains gracefully: submissions get 503,
// in-flight jobs finish (bounded by -drain-timeout), then it exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wcle/internal/cluster"
	"wcle/internal/obs"
	"wcle/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
		workers      = flag.Int("workers", 1, "concurrent jobs (each job already shards across -election-workers)")
		queueCap     = flag.Int("queue", 16, "bounded job-queue capacity; overflow gets 429")
		electWorkers = flag.Int("election-workers", 0, "per-job election shard count (0 = NumCPU)")
		retainJobs   = flag.Int("retain-jobs", 1024, "finished jobs kept queryable; older ones are evicted (404)")
		graphsFile   = flag.String("graphs", "", "JSON file of graphs to pre-register: {\"name\": {\"family\": ...}, ...}")
		clusterAddr  = flag.String("cluster", "", "dispatch every election to the wire-level cluster coordinator at this address (see cmd/electnode) instead of running in-process")
		readyFile    = flag.String("ready-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs")
		traceOut     = flag.String("trace", "", "stream every election's trace events to this NDJSON file (electtrace-readable); the bounded flight recorder at /flightz is always on")
	)
	flag.Parse()

	opts := serve.Options{Workers: *workers, QueueCap: *queueCap,
		ElectionWorkers: *electWorkers, RetainJobs: *retainJobs}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		ws := obs.NewWriterSink(f)
		opts.TraceSink = ws
		defer func() {
			if err := ws.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "electd: trace flush:", err)
			}
			f.Close()
		}()
	}
	if *clusterAddr != "" {
		cl, err := cluster.Dial(*clusterAddr)
		if err != nil {
			return err
		}
		defer cl.Close()
		opts.Cluster = cl
		fmt.Fprintf(os.Stderr, "electd: dispatching elections to the cluster at %s\n", *clusterAddr)
	}
	if *graphsFile != "" {
		b, err := os.ReadFile(*graphsFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &opts.Graphs); err != nil {
			return fmt.Errorf("parsing -graphs %s: %w", *graphsFile, err)
		}
	}
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "electd: listening on %s (%d graphs pre-registered, queue %d, %d job workers)\n",
		bound, len(opts.Graphs), *queueCap, *workers)
	if *readyFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := *readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *readyFile); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errs := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errs <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errs:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	fmt.Fprintln(os.Stderr, "electd: draining (submissions now get 503)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "electd: drained, bye")
	return nil
}
