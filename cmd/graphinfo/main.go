// Command graphinfo reports the spectral quantities the paper's analysis is
// written in: mixing time, the second eigenvalue of the lazy walk,
// conductance bounds, and basic structure.
//
// Example:
//
//	graphinfo -graph hypercube -n 256
//	graphinfo -graph lb -n 1024 -alpha 0.005
package main

import (
	"flag"
	"fmt"
	"os"

	"wcle"
	"wcle/internal/core"
	"wcle/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("graph", "rr", "graph family: clique|cycle|hypercube|torus|rr|lb|dumbbell")
		n      = flag.Int("n", 128, "target node count")
		d      = flag.Int("d", 8, "degree for rr/dumbbell")
		alpha  = flag.Float64("alpha", 1.0/196, "conductance scale for lb")
		seed   = flag.Int64("seed", 1, "construction seed")
		tmax   = flag.Int("tmax", 5_000_000, "mixing time search cap")
		exact  = flag.Bool("exact-tmix", false, "maximize over every start node (slow)")
	)
	flag.Parse()

	g, err := build(*family, *n, *d, *alpha, *seed)
	if err != nil {
		return err
	}
	min, max := graph.MinMaxDegree(g)
	fmt.Printf("graph %s: n=%d m=%d degree=[%d,%d] connected=%v",
		g.Name(), g.N(), g.M(), min, max, graph.Connected(g))
	if g.N() <= 2048 {
		fmt.Printf(" diameter=%d", graph.Diameter(g))
	}
	fmt.Println()

	var tmix int
	if *exact {
		tmix, err = wcle.MixingTime(g, *tmax)
	} else {
		starts := []int{0, g.N() / 3, 2 * g.N() / 3}
		tmix, err = wcle.MixingTimeSampled(g, *tmax, starts)
	}
	if err != nil {
		fmt.Printf("tmix: %v\n", err)
	} else {
		fmt.Printf("tmix(1/2n) = %d\n", tmix)
	}

	lam, err := wcle.Lambda2(g)
	if err != nil {
		return err
	}
	lo, hi := wcle.CheegerBounds(lam)
	fmt.Printf("lambda2(lazy) = %.6f  spectral gap = %.6f\n", lam, 1-lam)
	fmt.Printf("conductance: Cheeger bounds [%.5f, %.5f]", lo, hi)
	if sweep, err := wcle.SweepConductance(g); err == nil {
		fmt.Printf("  sweep-cut <= %.5f", sweep)
	}
	if g.N() <= 22 {
		if phi, err := wcle.Conductance(g); err == nil {
			fmt.Printf("  exact = %.5f", phi)
		}
	}
	fmt.Println()

	p, err := core.ResolveParams(g.N(), wcle.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("algorithm parameters at n=%d: contender p=%.5f walks=%d interThreshold=%d distinctThreshold=%d maxWalkLen=%d\n",
		g.N(), p.ContenderProb, p.Walks, p.InterThreshold, p.DistinctThreshold, p.MaxWalkLen)
	return nil
}

func build(family string, n, d int, alpha float64, seed int64) (*wcle.Graph, error) {
	switch family {
	case "clique":
		return wcle.NewClique(n, seed)
	case "cycle":
		return wcle.NewCycle(n, seed)
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		return wcle.NewHypercube(dim, seed)
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		return wcle.NewTorus(side, side, seed)
	case "rr":
		return wcle.NewRandomRegular(n, d, seed)
	case "lb":
		lb, err := wcle.NewLowerBoundGraph(n, alpha, seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("lower-bound construction: alpha=%.5g eps=%.4f cliqueSize=%d cliques=%d\n",
			lb.Alpha, lb.Epsilon, lb.CliqueSize, lb.NumCliques)
		return lb.Graph, nil
	case "dumbbell":
		db, err := wcle.NewDumbbell(n/2, d, seed)
		if err != nil {
			return nil, err
		}
		return db.Graph, nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}
