package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: wcle
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkElectClique64 	       1	  69565487 ns/op	     66588 congest-msgs	14800720 B/op	  139756 allocs/op
BenchmarkE1MessageScaling-8 	       1	1541150817 ns/op	         6.000 table-rows	211374984 B/op	 1732484 allocs/op
BenchmarkNoMem 	     100	      1234 ns/op
PASS
ok  	wcle	0.074s
`

func TestParseBenchOutput(t *testing.T) {
	run, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Goarch != "amd64" || !strings.Contains(run.CPU, "Xeon") {
		t.Fatalf("header: %+v", run)
	}
	if len(run.Entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(run.Entries))
	}
	e := run.Entries[0]
	if e.Name != "BenchmarkElectClique64" || e.Iterations != 1 ||
		e.NsPerOp != 69565487 || e.BPerOp != 14800720 || e.AllocsPerOp != 139756 {
		t.Fatalf("entry 0: %+v", e)
	}
	if e.Custom["congest-msgs"] != 66588 {
		t.Fatalf("custom metric lost: %+v", e.Custom)
	}
	// The -8 GOMAXPROCS suffix must be stripped for stable names.
	if run.Entries[1].Name != "BenchmarkE1MessageScaling" {
		t.Fatalf("suffix not stripped: %q", run.Entries[1].Name)
	}
	if run.Entries[1].Custom["table-rows"] != 6 {
		t.Fatalf("fractional custom metric: %+v", run.Entries[1].Custom)
	}
	// Without -benchmem the memory fields are absent, not zero.
	if nm := run.Entries[2]; nm.BPerOp != -1 || nm.AllocsPerOp != -1 || nm.NsPerOp != 1234 {
		t.Fatalf("benchmem-less entry: %+v", nm)
	}
}

func TestLoadCommittedBaseline(t *testing.T) {
	// The committed baseline itself must stay parseable: it is what CI
	// gates on.
	base, err := loadBaseline(filepath.Join("..", "..", "BENCH_seed.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) < 20 {
		t.Fatalf("suspiciously few baseline benchmarks: %d", len(base.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range base.Entries {
		byName[e.Name] = e
	}
	e, ok := byName["BenchmarkElectClique64"]
	if !ok {
		t.Fatal("BenchmarkElectClique64 missing from baseline")
	}
	if e.AllocsPerOp <= 0 || e.NsPerOp <= 0 {
		t.Fatalf("baseline entry empty: %+v", e)
	}
	if e.Custom["congest-msgs"] != 66588 {
		t.Fatalf("baseline custom metric: %+v", e.Custom)
	}
}

func baselineOf(entries ...Entry) *Baseline {
	return &Baseline{Revision: "test", Entries: entries}
}

func runOf(entries ...Entry) *Run {
	return &Run{Entries: entries}
}

func TestCompare(t *testing.T) {
	base := baselineOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	)
	// Within tolerance: +20% ns at 25% tolerance, equal allocs.
	_, n, _ := compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 100, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 900, AllocsPerOp: 90, BPerOp: 4000},
	), 0.25, 0, false)
	if n != 0 {
		t.Fatalf("within-tolerance run flagged %d regressions", n)
	}
	// ns blowup fails.
	rep, n, _ := compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1300, AllocsPerOp: 100, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0, false)
	if n != 1 || !strings.Contains(rep, "FAIL") {
		t.Fatalf("ns regression not flagged (n=%d):\n%s", n, rep)
	}
	// Any allocs increase fails at zero tolerance...
	_, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 101, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0, false)
	if n != 1 {
		t.Fatalf("allocs regression not flagged: n=%d", n)
	}
	// ...but passes under a nonzero allocs tolerance.
	_, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 101, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0.05, false)
	if n != 0 {
		t.Fatalf("allocs within tolerance still flagged: n=%d", n)
	}
	// A benchmark missing from the run is a failure unless allowed.
	_, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0, false)
	if n != 1 {
		t.Fatalf("missing benchmark not flagged: n=%d", n)
	}
	rep, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0, true)
	if n != 0 || !strings.Contains(rep, "SKIP") {
		t.Fatalf("allow-missing not honored (n=%d):\n%s", n, rep)
	}
	// A baseline that gates allocations vs a run measured without
	// -benchmem must fail loudly, not skip the allocation gate.
	rep, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: -1, BPerOp: -1},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
	), 0.25, 0, false)
	if n != 1 || !strings.Contains(rep, "unmeasured") {
		t.Fatalf("benchmem-less run not flagged (n=%d):\n%s", n, rep)
	}
	// New benchmarks absent from the baseline are not failures, but they
	// must be called out as ungated.
	rep, n, _ = compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 5000},
		Entry{Name: "BenchmarkNew", NsPerOp: 1, AllocsPerOp: 1, BPerOp: 1},
	), 0.25, 0, false)
	if n != 0 {
		t.Fatalf("novel benchmark treated as regression: n=%d", n)
	}
	if !strings.Contains(rep, "NEW") || !strings.Contains(rep, "BenchmarkNew") {
		t.Fatalf("novel benchmark not reported as ungated:\n%s", rep)
	}
}

// Re-baselining must round-trip: write a baseline from a parsed run, read
// it back, and gate that same run cleanly against it.
func TestWriteRoundTrip(t *testing.T) {
	run, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, renderBaseline(run, "deadbeef", "1x", 42), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Revision != "deadbeef" || len(base.Entries) != len(run.Entries) {
		t.Fatalf("round-trip header/count: %+v", base)
	}
	for i, e := range base.Entries {
		orig := run.Entries[i]
		if e.Name != orig.Name || e.NsPerOp != orig.NsPerOp ||
			e.AllocsPerOp != orig.AllocsPerOp || e.BPerOp != orig.BPerOp ||
			len(e.Custom) != len(orig.Custom) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, e, orig)
		}
		for k, v := range orig.Custom {
			if e.Custom[k] != v {
				t.Fatalf("custom %q lost: %+v", k, e.Custom)
			}
		}
	}
	_, n, _ := compare(base, run, 0, 0, false)
	if n != 0 {
		t.Fatalf("identical run vs its own baseline flagged %d regressions", n)
	}
}

// The failure path surfaces the measured margin: worst deltas track the
// largest ns/op and allocs/op regressions across the whole run.
func TestCompareWorstDeltas(t *testing.T) {
	base := baselineOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 1},
		Entry{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100, BPerOp: 1},
	)
	_, n, worst := compare(base, runOf(
		Entry{Name: "BenchmarkA", NsPerOp: 1500, AllocsPerOp: 112, BPerOp: 1},
		Entry{Name: "BenchmarkB", NsPerOp: 1100, AllocsPerOp: 101, BPerOp: 1},
	), 0.25, 0.01, false)
	if n != 3 { // A fails both gates, B fails allocs only
		t.Fatalf("expected 3 regressions, got %d", n)
	}
	if worst.ns < 0.499 || worst.ns > 0.501 {
		t.Fatalf("worst ns delta %.3f, want ~0.50", worst.ns)
	}
	if worst.allocs < 0.119 || worst.allocs > 0.121 {
		t.Fatalf("worst allocs delta %.3f, want ~0.12", worst.allocs)
	}
}
