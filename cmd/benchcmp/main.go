// Command benchcmp is the CI benchmark-regression gate: it parses
// `go test -bench` output and compares every benchmark against the
// committed baseline (BENCH_seed.json), failing when a hot path regresses
// beyond tolerance — ns/op by a generous relative margin (wall time is
// noisy across machines), allocs/op by a tight one (allocation counts are
// nearly deterministic for a fixed toolchain; single-iteration runs jitter
// by a handful of allocs, so the default tolerance is 1%, not 0).
//
// Compare (the CI path):
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x . | tee bench.txt
//	go run ./cmd/benchcmp -baseline BENCH_seed.json -bench bench.txt -ns-tol 1.0
//
// Re-baseline (after an intentional perf change, on a quiet machine):
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x . > bench.txt
//	go run ./cmd/benchcmp -bench bench.txt -write BENCH_seed.json \
//	    -revision "$(git rev-parse --short HEAD)"
//
// and commit the rewritten BENCH_seed.json with the change that motivated
// it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark's measurements.
type Entry struct {
	Name        string
	Iterations  int64
	NsPerOp     float64
	BPerOp      float64 // -1 when the run lacked -benchmem
	AllocsPerOp float64 // -1 when the run lacked -benchmem
	Custom      map[string]float64
}

// Run is a parsed `go test -bench` output.
type Run struct {
	Goos, Goarch, CPU string
	Entries           []Entry
}

// Baseline mirrors the committed BENCH_seed.json schema.
type Baseline struct {
	Description string
	Revision    string
	Entries     []Entry
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_seed.json", "committed baseline JSON")
		benchPath    = flag.String("bench", "-", "go test -bench output to check (\"-\" = stdin)")
		nsTol        = flag.Float64("ns-tol", 0.25, "relative ns/op regression tolerance (0.25 = +25%)")
		allocsTol    = flag.Float64("allocs-tol", 0.01, "relative allocs/op regression tolerance (default 1%: benchtime=1x runs jitter by a handful of allocs; real hot-path regressions are orders of magnitude larger)")
		tolerance    = flag.Float64("tolerance", 0.01, "alias for -allocs-tol, the gate's tight margin; takes precedence when set explicitly")
		allowMissing = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the run (partial -bench filters)")
		writePath    = flag.String("write", "", "re-baseline: write this JSON from the run instead of comparing")
		revision     = flag.String("revision", "unknown", "revision stamp for -write")
		benchtime    = flag.String("benchtime", "1x", "benchtime stamp for -write")
		seedSuite    = flag.Int64("seed", 42, "suite seed stamp for -write")
	)
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" {
			*allocsTol = *tolerance
		}
	})

	in := os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	run, err := parseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(run.Entries) == 0 {
		return fmt.Errorf("no benchmark lines in %s (did the bench run fail?)", *benchPath)
	}

	if *writePath != "" {
		b := renderBaseline(run, *revision, *benchtime, *seedSuite)
		if err := os.WriteFile(*writePath, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("benchcmp: wrote %d benchmarks to %s\n", len(run.Entries), *writePath)
		return nil
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	report, regressions, worst := compare(base, run, *nsTol, *allocsTol, *allowMissing)
	fmt.Print(report)
	if regressions > 0 {
		// Name the measured margin, not just the verdict: a gate tripped
		// by +1.2% against a 1% tolerance reads very differently from one
		// tripped by +300% — or by a benchmark that never ran at all.
		msg := fmt.Sprintf("%d regression(s) against %s — worst ns/op %+.1f%% (tolerance +%.0f%%), worst allocs/op %+.1f%% (tolerance +%.1f%%)",
			regressions, *baselinePath, worst.ns*100, *nsTol*100, worst.allocs*100, *allocsTol*100)
		if worst.missing > 0 {
			msg += fmt.Sprintf(", %d baseline benchmark(s) missing from the run", worst.missing)
		}
		return fmt.Errorf("%s; re-baseline with -write if intentional, see README", msg)
	}
	fmt.Printf("benchcmp: ok — %d benchmarks within tolerance (ns/op +%.0f%%, allocs/op +%.0f%%)\n",
		len(base.Entries), *nsTol*100, *allocsTol*100)
	return nil
}

// benchLine matches "BenchmarkName[-P] <iters> <measurements...>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchOutput reads the text format of `go test -bench`. Measurement
// fields come in "<value> <unit>" pairs; ns/op, B/op, and allocs/op are
// structural, anything else is a custom b.ReportMetric unit.
func parseBenchOutput(r io.Reader) (*Run, error) {
	out := &Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		e := Entry{Name: m[1], Iterations: iters, BPerOp: -1, AllocsPerOp: -1,
			NsPerOp: -1, Custom: map[string]float64{}}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd measurement fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad measurement %q in %q: %w", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			case "MB/s":
				// throughput is derivable; skip
			default:
				e.Custom[unit] = val
			}
		}
		if e.NsPerOp < 0 {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		out.Entries = append(out.Entries, e)
	}
	return out, sc.Err()
}

// loadBaseline reads the committed JSON. Benchmark objects are decoded as
// loose maps: structural fields by name, every other numeric key (e.g.
// congest_msgs, table_rows) is a custom metric with '_' for '-'.
func loadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Description string                   `json:"description"`
		Revision    string                   `json:"revision"`
		Benchmarks  []map[string]interface{} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("corrupt baseline %s: %w", path, err)
	}
	out := &Baseline{Description: doc.Description, Revision: doc.Revision}
	for i, b := range doc.Benchmarks {
		e := Entry{BPerOp: -1, AllocsPerOp: -1, Custom: map[string]float64{}}
		for k, v := range b {
			switch k {
			case "name":
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("baseline %s: benchmark %d has a non-string name", path, i)
				}
				e.Name = s
				continue
			}
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("baseline %s: %v.%s is not a number", path, b["name"], k)
			}
			switch k {
			case "iterations":
				e.Iterations = int64(f)
			case "ns_per_op":
				e.NsPerOp = f
			case "B_per_op":
				e.BPerOp = f
			case "allocs_per_op":
				e.AllocsPerOp = f
			default:
				e.Custom[strings.ReplaceAll(k, "_", "-")] = f
			}
		}
		if e.Name == "" {
			return nil, fmt.Errorf("baseline %s: benchmark %d has no name", path, i)
		}
		out.Entries = append(out.Entries, e)
	}
	if len(out.Entries) == 0 {
		return nil, fmt.Errorf("baseline %s has no benchmarks", path)
	}
	return out, nil
}

// worstDeltas tracks the largest measured regressions (and structural
// failures with no delta to measure), for the failure message.
type worstDeltas struct {
	ns      float64
	allocs  float64
	missing int // baseline benchmarks absent from the run
}

// compare checks the run against the baseline and returns a human report,
// the number of gating regressions, and the worst measured deltas.
func compare(base *Baseline, run *Run, nsTol, allocsTol float64, allowMissing bool) (string, int, worstDeltas) {
	current := make(map[string]Entry, len(run.Entries))
	for _, e := range run.Entries {
		current[e.Name] = e
	}
	var sb strings.Builder
	regressions := 0
	var worst worstDeltas
	fmt.Fprintf(&sb, "benchcmp: baseline rev %s, %d benchmarks\n", base.Revision, len(base.Entries))
	for _, b := range base.Entries {
		cur, ok := current[b.Name]
		if !ok {
			if allowMissing {
				fmt.Fprintf(&sb, "  SKIP  %-38s not in this run\n", b.Name)
				continue
			}
			regressions++
			worst.missing++
			fmt.Fprintf(&sb, "  MISS  %-38s in baseline but not in this run (deleted a benchmark?)\n", b.Name)
			continue
		}
		status := "ok"
		var notes []string
		if b.NsPerOp > 0 {
			delta := cur.NsPerOp/b.NsPerOp - 1
			if delta > worst.ns {
				worst.ns = delta
			}
			if delta > nsTol {
				status = "FAIL"
				regressions++
			}
			notes = append(notes, fmt.Sprintf("ns/op %+.1f%%", delta*100))
		}
		if b.AllocsPerOp >= 0 && cur.AllocsPerOp < 0 {
			// The baseline gates allocations but this run did not measure
			// them — letting that pass silently would drop the gate's
			// tightest signal.
			status = "FAIL"
			regressions++
			notes = append(notes, "allocs/op unmeasured (run without -benchmem?)")
		}
		if b.AllocsPerOp >= 0 && cur.AllocsPerOp >= 0 {
			delta := 0.0
			if b.AllocsPerOp > 0 {
				delta = cur.AllocsPerOp/b.AllocsPerOp - 1
			} else if cur.AllocsPerOp > 0 {
				delta = 1
			}
			if delta > worst.allocs {
				worst.allocs = delta
			}
			if delta > allocsTol {
				status = "FAIL"
				regressions++
			}
			notes = append(notes, fmt.Sprintf("allocs/op %+.1f%% (%.0f -> %.0f)",
				delta*100, b.AllocsPerOp, cur.AllocsPerOp))
		}
		fmt.Fprintf(&sb, "  %-4s  %-38s %s\n", status, b.Name, strings.Join(notes, ", "))
	}
	// Benchmarks the run has but the baseline lacks are not failures, yet
	// they are ungated until someone re-baselines — say so, or the gap is
	// invisible behind an all-ok report.
	baselined := make(map[string]bool, len(base.Entries))
	for _, b := range base.Entries {
		baselined[b.Name] = true
	}
	for _, e := range run.Entries {
		if !baselined[e.Name] {
			fmt.Fprintf(&sb, "  NEW   %-38s not in the baseline — ungated until re-baselined (-write)\n", e.Name)
		}
	}
	return sb.String(), regressions, worst
}

// renderBaseline emits the BENCH_seed.json schema for a run, custom
// metrics as underscored keys, deterministically ordered.
func renderBaseline(run *Run, revision, benchtime string, seed int64) []byte {
	var sb strings.Builder
	sb.WriteString("{\n")
	fmt.Fprintf(&sb, "  %q: %q,\n", "description",
		"Benchmark baseline for hot-path delta tracking. Regenerate with: go test -run XXX -bench . -benchmem -benchtime 1x . (single-iteration wall times on a noisy shared vCPU: treat ns/op as indicative, B/op and allocs/op as exact).")
	fmt.Fprintf(&sb, "  %q: %q,\n", "revision", revision)
	fmt.Fprintf(&sb, "  %q: %d,\n", "seed_suite", seed)
	fmt.Fprintf(&sb, "  %q: %q,\n", "goos", run.Goos)
	fmt.Fprintf(&sb, "  %q: %q,\n", "goarch", run.Goarch)
	fmt.Fprintf(&sb, "  %q: %q,\n", "cpu", run.CPU)
	fmt.Fprintf(&sb, "  %q: %q,\n", "benchtime", benchtime)
	sb.WriteString("  \"benchmarks\": [\n")
	for i, e := range run.Entries {
		fields := []string{
			fmt.Sprintf("      %q: %q", "name", e.Name),
			fmt.Sprintf("      %q: %d", "iterations", e.Iterations),
			fmt.Sprintf("      %q: %s", "ns_per_op", formatNum(e.NsPerOp)),
		}
		keys := make([]string, 0, len(e.Custom))
		for k := range e.Custom {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fields = append(fields, fmt.Sprintf("      %q: %s",
				strings.ReplaceAll(k, "-", "_"), formatNum(e.Custom[k])))
		}
		if e.BPerOp >= 0 {
			fields = append(fields, fmt.Sprintf("      %q: %s", "B_per_op", formatNum(e.BPerOp)))
		}
		if e.AllocsPerOp >= 0 {
			fields = append(fields, fmt.Sprintf("      %q: %s", "allocs_per_op", formatNum(e.AllocsPerOp)))
		}
		sb.WriteString("    {\n")
		sb.WriteString(strings.Join(fields, ",\n"))
		if i < len(run.Entries)-1 {
			sb.WriteString("\n    },\n")
		} else {
			sb.WriteString("\n    }\n")
		}
	}
	sb.WriteString("  ]\n}\n")
	return []byte(sb.String())
}

// formatNum renders integral floats without an exponent or decimal point.
func formatNum(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
