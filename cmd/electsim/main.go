// Command electsim runs one leader election on a chosen graph family and
// prints the outcome and model-level costs. -algo selects the election
// backend from the algo registry: gilbertrs18 (the paper's algorithm, the
// default), floodmax (the Omega(m) flooding baseline), or kpprt (the
// sublinear candidate-sampling election of Kutten et al.).
//
// Examples:
//
//	electsim -graph rr -n 256 -d 8 -seed 7
//	electsim -graph clique -n 128 -explicit
//	electsim -graph clique -n 256 -algo kpprt
//	electsim -graph clique -n 256 -algo floodmax
//	electsim -graph lb -n 1024 -alpha 0.005
//	electsim -graph rr -n 128 -drop 0.05 -resend 2
//	electsim -graph rr -n 128 -crash 0.2@1 -delay 3
//	electsim -graph rr -n 128 -byz 0.15
//	electsim -protocol pushpull -graph rr -n 128 -rumor 7 -byz 1,9 -defend
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wcle"
	"wcle/internal/algo"
	"wcle/internal/core"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electsim:", err)
		os.Exit(1)
	}
}

func buildGraph(family string, n, d int, alpha float64, seed int64) (*wcle.Graph, error) {
	switch family {
	case "clique":
		return wcle.NewClique(n, seed)
	case "cycle":
		return wcle.NewCycle(n, seed)
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		return wcle.NewHypercube(dim, seed)
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		return wcle.NewTorus(side, side, seed)
	case "rr":
		return wcle.NewRandomRegular(n, d, seed)
	case "lb":
		lb, err := wcle.NewLowerBoundGraph(n, alpha, seed)
		if err != nil {
			return nil, err
		}
		return lb.Graph, nil
	case "dumbbell":
		db, err := wcle.NewDumbbell(n/2, d, seed)
		if err != nil {
			return nil, err
		}
		return db.Graph, nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func run() error {
	var (
		family   = flag.String("graph", "rr", "graph family: clique|cycle|hypercube|torus|rr|lb|dumbbell")
		algoName = flag.String("algo", wcle.DefaultAlgorithm(),
			fmt.Sprintf("election backend: %s", strings.Join(wcle.Algorithms(), "|")))
		protoName = flag.String("protocol", "",
			fmt.Sprintf("run any registered protocol through the generic engine (overrides -algo): %s", strings.Join(wcle.Protocols(), "|")))
		root     = flag.Int("root", 0, "protocol mode: source/root node")
		rumor    = flag.Uint64("rumor", 0, "protocol mode: pushpull rumor id (0 = 1)")
		op       = flag.String("op", "", "protocol mode: aggregate operation, max|sum (\"\" = max)")
		horizon  = flag.Int("horizon", 0, "floodmax decision round (0 = n)")
		hops     = flag.Int("hops", 0, "kpprt referee-sampling walk length (0 = auto)")
		n        = flag.Int("n", 128, "target node count")
		d        = flag.Int("d", 8, "degree for rr/dumbbell")
		alpha    = flag.Float64("alpha", 1.0/196, "conductance scale for lb")
		seed     = flag.Int64("seed", 1, "run seed")
		c1       = flag.Float64("c1", 0, "override c1 (0 = default)")
		c2       = flag.Float64("c2", 0, "override c2 (0 = default)")
		large    = flag.Bool("large", false, "use O(log^3 n)-bit messages (Lemma 12 mode)")
		fixed    = flag.Int("fixed-tu", 0, "known-tmix baseline: single phase of this walk length")
		budget   = flag.Int64("budget", 0, "message budget (0 = unlimited)")
		explicit = flag.Bool("explicit", false, "append the Corollary 14 push-pull broadcast")
		phases   = flag.Bool("phases", false, "print a per-phase message breakdown")
		drop     = flag.Float64("drop", 0, "fault plane: lose each send with this probability")
		delay    = flag.Int("delay", 0, "fault plane: uniform extra delivery delay in [0, delay] rounds")
		crash    = flag.String("crash", "", "fault plane: \"frac@round\" (e.g. 0.2@1) or \"node:round,...\"")
		byz      = flag.String("byz", "", "fault plane: Byzantine adversary, a fraction (\"0.15\") or pinned node list (\"1,9\")")
		defend   = flag.Bool("defend", false, "protocol mode: wrap the protocol in committee-sampled validation (engine.WithCommittee)")
		resend   = flag.Int("resend", 0, "retransmit each idempotent protocol message this many extra times")
		traceOut = flag.String("trace", "", "write a structured trace of the run (NDJSON, electtrace-readable) to this file")
	)
	flag.Parse()

	// -trace attaches a strictly observational tracer: the run's outcome
	// and costs are byte-identical with and without it.
	var tr *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		ws := obs.NewWriterSink(f)
		tr = obs.New(ws, 0)
		defer func() {
			if err := ws.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "electsim: trace flush: %v\n", err)
			}
			f.Close()
		}()
	}

	if *protoName != "" {
		g, err := buildGraph(*family, *n, *d, *alpha, *seed)
		if err != nil {
			return err
		}
		fault, err := buildFault(*drop, *delay, *crash, *byz)
		if err != nil {
			return err
		}
		return runProtocol(g, *protoName, wcle.ProtocolConfig{
			Source:  *root,
			Root:    *root,
			Rumor:   *rumor,
			Horizon: *horizon,
			Op:      *op,
			Hops:    *hops,
			Defend:  *defend,
		}, wcle.AlgorithmOptions{Seed: *seed, Budget: *budget, Fault: fault, Tracer: tr})
	}
	if *defend {
		// The committee wrapper lives in the engine path; the election
		// backends are all engine-registered, so the defended form is one
		// flag away.
		return fmt.Errorf("-defend requires protocol mode: rerun with -protocol %s", *algoName)
	}

	if !algo.Known(*algoName) {
		// Fail before any graph work, naming what would have worked: the
		// registry knows its backends, so the error should too.
		return fmt.Errorf("unknown algorithm %q; registered backends: %s",
			*algoName, strings.Join(wcle.Algorithms(), ", "))
	}
	g, err := buildGraph(*family, *n, *d, *alpha, *seed)
	if err != nil {
		return err
	}
	cfg := wcle.DefaultConfig()
	if *c1 > 0 {
		cfg.C1 = *c1
	}
	if *c2 > 0 {
		cfg.C2 = *c2
	}
	if *large {
		cfg.Mode = protocol.ModeLarge
	}
	if *fixed > 0 {
		cfg.FixedWalkLen = *fixed
	}
	cfg.Resend = *resend
	opts := wcle.Options{Seed: *seed, Budget: *budget, Tracer: tr}
	fault, err := buildFault(*drop, *delay, *crash, *byz)
	if err != nil {
		return err
	}
	var faults *trace.FaultLog
	if fault != nil {
		opts.Fault = fault
		faults = &trace.FaultLog{}
		opts.FaultObserver = faults
	}
	var phaseObs *core.PhaseObserver
	if *phases {
		var err error
		phaseObs, err = core.NewPhaseObserver(g.N(), cfg)
		if err != nil {
			return err
		}
		opts.Observer = phaseObs
	}

	fmt.Printf("graph %s: n=%d m=%d\n", g.Name(), g.N(), g.M())
	if *algoName != wcle.DefaultAlgorithm() {
		// Non-default backends print the backend-independent outcome;
		// the paper-specific knobs stay with the default algorithm
		// rather than being silently ignored.
		if *explicit || *phases || *fixed > 0 || *resend > 0 || *large || *c1 > 0 || *c2 > 0 {
			return fmt.Errorf("-explicit/-phases/-fixed-tu/-resend/-large/-c1/-c2 only apply to %s", wcle.DefaultAlgorithm())
		}
		acfg := wcle.AlgorithmConfig{Core: cfg, Horizon: *horizon}
		acfg.Sublinear.Hops = *hops
		out, err := wcle.ElectWith(*algoName, g, acfg, wcle.AlgorithmOptions{
			Seed:          *seed,
			Budget:        *budget,
			Observer:      opts.Observer,
			Fault:         opts.Fault,
			FaultObserver: opts.FaultObserver,
			Tracer:        tr,
		})
		if err != nil {
			return err
		}
		fmt.Printf("algorithm: %s (explicit=%v)\n", out.Algorithm, out.Explicit)
		fmt.Printf("outcome: leaders=%v success=%v contenders=%d\n", out.Leaders, out.Success, out.Contenders)
		fmt.Printf("leaderRound=%d totalRounds=%d\n", out.LeaderRound, out.Rounds)
		fmt.Printf("messages=%d bits=%d dropped=%d lost=%d delayed=%d mutated=%d byKind=%v\n",
			out.Metrics.Messages, out.Metrics.Bits, out.Metrics.Dropped,
			out.Metrics.FaultDrops, out.Metrics.Delayed, out.Metrics.Mutated, out.Metrics.ByKind)
		if faults != nil {
			fmt.Printf("faults: lost=%d delayed=%d crashed=%d mutated=%d\n", faults.Drops, faults.Delays, faults.Crashes, faults.Mutations)
		}
		return nil
	}
	if *explicit {
		res, err := wcle.ElectExplicit(g, cfg, opts, 0)
		if err != nil {
			return err
		}
		printResult(res.Implicit)
		if res.Broadcast != nil {
			fmt.Printf("broadcast: informed=%d/%d rounds=%d messages=%d\n",
				res.Broadcast.Informed, g.N(), res.Broadcast.CompletionRound, res.Broadcast.Metrics.Messages)
		}
		fmt.Printf("explicit total messages: %d\n", res.TotalMessages)
		return nil
	}
	res, err := wcle.Elect(g, cfg, opts)
	if err != nil {
		return err
	}
	printResult(res)
	if faults != nil {
		fmt.Printf("faults: lost=%d delayed=%d crashed=%d mutated=%d\n", faults.Drops, faults.Delays, faults.Crashes, faults.Mutations)
	}
	if phaseObs != nil {
		fmt.Println("per-phase breakdown (tu doubles each phase):")
		for p := 0; p < phaseObs.UsedPhases(); p++ {
			fmt.Printf("   phase %d (tu=%d): %d messages, %d bits, kinds %v\n",
				p, 1<<p, phaseObs.Messages[p], phaseObs.Bits[p], phaseObs.Kinds[p])
		}
	}
	return nil
}

// runProtocol executes any registered protocol through the generic engine
// and prints the protocol-independent report: the output-slot summary, the
// cost accounting, and (when the protocol is an election backend) the
// election outcome.
func runProtocol(g *wcle.Graph, name string, cfg wcle.ProtocolConfig, opts wcle.AlgorithmOptions) error {
	rep, err := wcle.Run(name, g, cfg, opts)
	if err != nil {
		return err
	}
	res := rep.Result
	fmt.Printf("graph %s: n=%d m=%d\n", g.Name(), g.N(), g.M())
	fmt.Printf("protocol: %s slots=%v\n", res.Protocol, res.Slots)
	fmt.Printf("rounds=%d messages=%d bits=%d dropped=%d lost=%d delayed=%d mutated=%d\n",
		res.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.Dropped,
		res.Metrics.FaultDrops, res.Metrics.Delayed, res.Metrics.Mutated)
	// One line per slot: the [min, max] envelope of that output column.
	for s, slot := range res.Slots {
		lo, hi := res.Outputs[0][s], res.Outputs[0][s]
		for _, o := range res.Outputs {
			if o[s] < lo {
				lo = o[s]
			}
			if o[s] > hi {
				hi = o[s]
			}
		}
		fmt.Printf("output %-12s min=%d max=%d\n", slot, lo, hi)
	}
	var total, maxNode int64
	for _, c := range res.PerNodeMessages {
		total += c
		if c > maxNode {
			maxNode = c
		}
	}
	fmt.Printf("per-node sends: total=%d max=%d\n", total, maxNode)
	if rep.Election != nil {
		out := rep.Election
		fmt.Printf("election outcome: leaders=%v success=%v contenders=%d leaderRound=%d\n",
			out.Leaders, out.Success, out.Contenders, out.LeaderRound)
	}
	return nil
}

// buildFault assembles the run's fault plane from the CLI flags.
func buildFault(drop float64, delay int, crash, byz string) (wcle.FaultPlane, error) {
	var planes []wcle.FaultPlane
	if drop > 0 {
		planes = append(planes, &wcle.Drop{P: drop})
	}
	if delay > 0 {
		planes = append(planes, &wcle.Delay{Max: delay})
	}
	if crash != "" {
		plane, err := parseCrash(crash)
		if err != nil {
			return nil, err
		}
		planes = append(planes, plane)
	}
	if byz != "" {
		plane, err := parseByz(byz)
		if err != nil {
			return nil, err
		}
		planes = append(planes, plane)
	}
	return wcle.ComposeFaults(planes...), nil
}

// parseByz accepts a fraction in (0, 1) — a seed-sampled adversary
// minority, recognized by its decimal point — or a comma list of node
// indices, a pinned adversary set.
func parseByz(spec string) (wcle.FaultPlane, error) {
	if strings.Contains(spec, ".") {
		f, err := strconv.ParseFloat(spec, 64)
		if err != nil || f <= 0 || f >= 1 {
			return nil, fmt.Errorf("bad byzantine fraction %q (want 0 < frac < 1, e.g. 0.15)", spec)
		}
		return &wcle.Byzantine{Frac: f}, nil
	}
	var nodes []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad byzantine node %q (want a fraction like 0.15 or a node list \"1,9\")", s)
		}
		nodes = append(nodes, v)
	}
	return &wcle.Byzantine{Nodes: nodes}, nil
}

// parseCrash accepts "frac@round" (a sampled crash set) or a comma list of
// "node:round" pairs (an explicit schedule).
func parseCrash(spec string) (wcle.FaultPlane, error) {
	if frac, roundStr, ok := strings.Cut(spec, "@"); ok {
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f <= 0 || f >= 1 {
			return nil, fmt.Errorf("bad crash fraction %q (want 0 < frac < 1)", frac)
		}
		r, err := strconv.Atoi(roundStr)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad crash round %q", roundStr)
		}
		return &wcle.CrashSample{Frac: f, Round: r}, nil
	}
	at := make(map[int]int)
	for _, pair := range strings.Split(spec, ",") {
		nodeStr, roundStr, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return nil, fmt.Errorf("bad crash entry %q (want node:round or frac@round)", pair)
		}
		node, err1 := strconv.Atoi(nodeStr)
		round, err2 := strconv.Atoi(roundStr)
		if err1 != nil || err2 != nil || node < 0 || round < 0 {
			return nil, fmt.Errorf("bad crash entry %q", pair)
		}
		at[node] = round
	}
	return &wcle.Crash{At: at}, nil
}

func printResult(res *wcle.Result) {
	fmt.Printf("contenders=%d (p=%.4f, walks=%d, thresholds inter=%d distinct=%d)\n",
		len(res.Contenders), res.ContenderProb, res.Walks, res.InterThreshold, res.DistinctThreshold)
	fmt.Printf("outcome: leaders=%v success=%v stopped=%d suppressed=%d failed=%d\n",
		res.Leaders, res.Success, len(res.Stopped), len(res.Suppressed), len(res.Failed))
	fmt.Printf("phases=%d leaderRound=%d totalRounds=%d\n", res.PhasesUsed, res.LeaderRound, res.Rounds)
	fmt.Printf("messages=%d bits=%d dropped=%d lost=%d delayed=%d mutated=%d byKind=%v\n",
		res.Metrics.Messages, res.Metrics.Bits, res.Metrics.Dropped,
		res.Metrics.FaultDrops, res.Metrics.Delayed, res.Metrics.Mutated, res.Metrics.ByKind)
}
